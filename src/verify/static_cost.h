// Pass 3: abstract cost interpretation of mpi::Program schedules.
//
// The DES answers "how long does this app take on this cluster" exactly,
// but running it costs minutes at scale. This pass answers the same
// question approximately in milliseconds, walking the *lowered* program
// (the same lower_collective + per-occurrence tag-base scheme the runtime
// and the verifier use) against the network's published cost model
// (net/network.cpp): frames of mtu bytes, 38 bytes of Ethernet overhead
// per frame, store-and-forward latency per hop, per-link serialization.
//
// What it computes, without running the DES:
//
//  * per-rank and aggregate bytes sent/received and message counts —
//    exact for fault-free runs (the lowering is deterministic and the
//    runtime counts payload bytes only, never retransmissions);
//  * a makespan LOWER bound: optimistic timed abstract execution. Each
//    rank advances through its lowered schedule with the runtime's
//    overhead constants; a network message is delivered no earlier than
//    route latency + wire bytes / bottleneck bandwidth, i.e. contention
//    and queueing are ignored. Every per-op cost is <= the DES cost and
//    the dependence edges are the same, so the resulting finish times
//    bound the DES from below;
//  * a makespan UPPER bound: the fully-serialized sum — all compute, all
//    software overheads, every message's per-hop latency + transmission
//    cost as if nothing ever overlapped — plus, for links whose total
//    traffic could overflow their buffer (no-drop certificate fails), the
//    worst-case retransmit cost per frame-hop (capped exponential backoff
//    schedule + one retransmission per attempt). Any completed DES run
//    fits under it;
//  * per-link-class traffic totals and in-flight high-water estimates
//    (peak concurrent bytes assuming each collective occurrence bursts at
//    once) — the congestion facts the PERF rule pack keys on.
//
// The interpreter requires a program that passes verify_program (the
// bounds of a deadlocked schedule are meaningless); analyze_cost throws
// when the abstract execution stalls. Bounds assume fault-free execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/program.h"
#include "mpi/runtime.h"
#include "net/topology.h"
#include "verify/diagnostics.h"

namespace mb::verify {

/// The platform half of the question: the switch tree the program runs
/// on, how ranks pack onto nodes, and the runtime's software costs.
/// Mirrors apps::ClusterConfig (ranks are packed node-major, ranks 2k and
/// 2k+1 share node k) without depending on the apps layer.
struct CostDescriptor {
  net::TreeParams tree;
  std::uint32_t cores_per_node = 2;
  std::uint32_t mtu_bytes = net::Network::kMtuBytes;
  mpi::RuntimeConfig mpi;
};

/// Static cost facts for one rank. Byte and message counts are exact;
/// times come from the optimistic (lower-bound) schedule.
struct RankCost {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  double compute_s = 0.0;
  double finish_lower_s = 0.0;   ///< optimistic completion time
  double wait_p2p_lower_s = 0.0; ///< blocked-in-p2p-recv time, lower bound
  /// The user-visible op with the largest single p2p wait (for PERF003).
  std::size_t worst_wait_op = 0;
  double worst_wait_s = 0.0;
};

/// Aggregated traffic for one class of directed links in the tree.
struct LinkClassCost {
  std::string name;             ///< "host-up", "host-down", "uplink-up", ...
  std::uint32_t links = 0;      ///< directed links in the class
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0; ///< payload + 38 B/frame, summed
  std::uint64_t max_link_wire_bytes = 0;  ///< busiest single link
  /// Peak concurrent bytes on the busiest link: the largest single
  /// collective-occurrence burst plus the sum of per-rank consecutive
  /// p2p send runs. An estimate (assumes bursts arrive at once), not a
  /// bound — it drives the PERF002 incast heuristic.
  std::uint64_t max_inflight_est = 0;
  double buffer_bytes = 0.0;    ///< drop threshold per link (w/ 4*mtu floor)
  std::uint32_t congested_links = 0;  ///< links with inflight_est > buffer
  /// True when no link in the class can ever drop a frame: total wire
  /// bytes through each link fit in its buffer (frames on a message's
  /// first hop never drop, so source-side classes certify trivially).
  bool no_drop_certified = true;
};

/// One collective occurrence with its per-class burst profile (PERF002 /
/// PERF006 input). op_index is rank 0's user-visible index.
struct CollectiveCost {
  mpi::Op::Kind kind = mpi::Op::Kind::kBarrier;
  std::size_t op_index = 0;
  std::string label;
  std::uint64_t payload_bytes = 0;      ///< summed over all lowered sends
  std::uint64_t worst_host_down = 0;    ///< peak burst into one host link
  std::uint64_t worst_uplink = 0;       ///< peak burst on one uplink
};

struct CostReport {
  std::uint32_t ranks = 0;
  std::uint32_t nodes = 0;
  std::uint32_t leaves = 0;
  std::uint32_t mtu_bytes = 0;

  std::vector<RankCost> per_rank;
  std::uint64_t total_bytes = 0;        ///< payload bytes, all sends
  std::uint64_t total_messages = 0;
  std::uint64_t intra_messages = 0;     ///< same-node, bypass the network
  std::uint64_t net_messages = 0;
  std::uint64_t total_frames = 0;       ///< network frames (mtu-sized)
  double total_compute_s = 0.0;

  double makespan_lower_s = 0.0;
  double makespan_upper_s = 0.0;        ///< sound for completed runs
  /// The serialized sum without the retransmit allowance: a valid upper
  /// bound only when every link class certifies no-drop; informational
  /// otherwise (the DES can exceed it through retransmit backoff).
  double makespan_serialized_s = 0.0;
  double retransmit_allowance_s = 0.0;  ///< upper - serialized
  bool no_drop_certified = false;       ///< all classes certified

  std::vector<LinkClassCost> link_classes;
  std::vector<CollectiveCost> collectives;

  // Convenience summaries over per_rank (payload bytes).
  std::uint64_t max_rank_bytes = 0;
  double mean_rank_bytes = 0.0;
};

/// Runs the abstract cost interpretation. Requires ranks ==
/// tree.nodes * cores_per_node and a program that terminates under
/// abstract execution (verify_program clean of errors); throws otherwise.
CostReport analyze_cost(const mpi::Program& program,
                        const CostDescriptor& descriptor);

/// Human rendering: a summary block plus per-link-class and top-rank
/// tables.
std::string render_cost(const CostReport& report);

/// JSON rendering — the "mb-static-analysis" schema, version 1. `source`
/// names the analyzed app, `seed` its effective seed. `findings` (may be
/// empty) embeds a diagnostics report in the mb-diagnostics findings
/// shape so one artifact carries both the bounds and the PERF findings.
std::string static_analysis_to_json(const CostReport& report,
                                    std::string_view source,
                                    std::uint64_t seed,
                                    const Report& findings);

}  // namespace mb::verify
