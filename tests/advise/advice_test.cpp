// mb-advice v1 document model: naming, ranking, JSON round-trips and the
// CLI rendering. The golden property throughout: serialization is a
// bijection on the fields the schema defines, byte-stable across runs.
#include "advise/advice.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::advise {
namespace {

Recommendation fired_remap() {
  Recommendation r;
  r.id = "remap-ranks:node2";
  r.kind = Kind::kRemapRanks;
  r.title = "migrate ranks 4,5 off slowed node 2 to a spare node";
  r.action = "extend the cluster by one spare node";
  r.target = "node2";
  r.metric = "time_to_solution_s";
  r.baseline_value = 12.5;
  r.proposed_value = 2.0;
  r.predicted_delta_lo = 0.15;
  r.predicted_delta_hi = 0.9;
  r.evidence.push_back({"mb-analysis", "/stragglers/0",
                        "rank 5 holds 8.26 s of attributed wait"});
  r.evidence.push_back(
      {"mb-fault-plan", "/slowdowns/0", "node 2 runs 5x slower"});
  r.appliable = true;
  return r;
}

Recommendation accepted_remap() {
  Recommendation r = fired_remap();
  r.verdict = Verdict::kAccepted;
  r.measured_baseline = 12.5;
  r.measured_candidate = 4.5;
  r.measured_delta = 0.64;
  r.verdict_reason = "compare confirms a significant improvement";
  return r;
}

AdviceReport sample_report() {
  AdviceReport report;
  report.scenario = "chaos:bigdft";
  report.seed = 2013;
  report.applied = true;
  report.recommendations.push_back(accepted_remap());
  Recommendation advisory;
  advisory.id = "sim-jobs";
  advisory.kind = Kind::kSimJobs;
  advisory.title = "shard the simulator";
  advisory.action = "re-run with --sim-jobs 8";
  advisory.target = "--sim-jobs";
  advisory.metric = "sim_wall_s";
  advisory.predicted_delta_hi = 0.875;
  advisory.verdict = Verdict::kAdvisory;
  advisory.verdict_reason = "advisory: nothing for guarded apply to confirm";
  report.recommendations.push_back(advisory);
  return report;
}

TEST(Advice, KindNamesRoundTrip) {
  for (Kind k : {Kind::kRemapRanks, Kind::kSwitchCollective,
                 Kind::kCheckpointInterval, Kind::kKernelVariant,
                 Kind::kSimJobs})
    EXPECT_EQ(parse_kind(kind_name(k)), k);
  EXPECT_THROW(parse_kind("frobnicate"), support::Error);
}

TEST(Advice, VerdictNamesRoundTrip) {
  for (Verdict v : {Verdict::kPending, Verdict::kAccepted,
                    Verdict::kRejected, Verdict::kAdvisory})
    EXPECT_EQ(parse_verdict(verdict_name(v)), v);
  EXPECT_THROW(parse_verdict("maybe"), support::Error);
}

TEST(Advice, JsonRoundTripIsByteIdentical) {
  const AdviceReport report = sample_report();
  const std::string once = to_json(report);
  const AdviceReport parsed = advice_from_json(once);
  EXPECT_EQ(to_json(parsed), once);
}

TEST(Advice, JsonRoundTripPreservesFields) {
  const AdviceReport parsed = advice_from_json(to_json(sample_report()));
  EXPECT_EQ(parsed.scenario, "chaos:bigdft");
  EXPECT_EQ(parsed.seed, 2013u);
  EXPECT_TRUE(parsed.applied);
  ASSERT_EQ(parsed.recommendations.size(), 2u);
  const Recommendation& r = parsed.recommendations[0];
  EXPECT_EQ(r.id, "remap-ranks:node2");
  EXPECT_EQ(r.kind, Kind::kRemapRanks);
  EXPECT_EQ(r.verdict, Verdict::kAccepted);
  EXPECT_DOUBLE_EQ(r.predicted_delta_lo, 0.15);
  EXPECT_DOUBLE_EQ(r.predicted_delta_hi, 0.9);
  EXPECT_DOUBLE_EQ(r.measured_delta, 0.64);
  ASSERT_EQ(r.evidence.size(), 2u);
  EXPECT_EQ(r.evidence[1].artifact, "mb-fault-plan");
  EXPECT_EQ(r.evidence[1].pointer, "/slowdowns/0");
  EXPECT_TRUE(r.appliable);
  EXPECT_FALSE(parsed.recommendations[1].appliable);
  EXPECT_EQ(parsed.recommendations[1].verdict, Verdict::kAdvisory);
}

TEST(Advice, JsonCarriesSchemaStamp) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"schema\": \"mb-advice\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
}

TEST(Advice, MeasuredFieldsOnlyAppearOnceVerdictExists) {
  AdviceReport report;
  report.scenario = "s";
  report.recommendations.push_back(fired_remap());  // pending
  const std::string json = to_json(report);
  EXPECT_EQ(json.find("measured_baseline"), std::string::npos);
  EXPECT_EQ(json.find("verdict_reason"), std::string::npos);
  report.recommendations[0] = accepted_remap();
  const std::string applied = to_json(report);
  EXPECT_NE(applied.find("measured_baseline"), std::string::npos);
  EXPECT_NE(applied.find("verdict_reason"), std::string::npos);
}

TEST(Advice, FromJsonRejectsForeignSchema) {
  EXPECT_THROW(advice_from_json(R"({"schema": "mb-bench-report",
      "schema_version": 1})"),
               support::Error);
  EXPECT_THROW(advice_from_json(R"({"schema": "mb-advice",
      "schema_version": 99})"),
               support::Error);
}

TEST(Advice, RankingSortsByPromisedWinThenId) {
  AdviceReport report;
  Recommendation a, b, c;
  a.id = "b-small";
  a.predicted_delta_hi = 0.1;
  b.id = "a-tied";
  b.predicted_delta_hi = 0.5;
  c.id = "z-tied";
  c.predicted_delta_hi = 0.5;
  report.recommendations = {a, c, b};
  rank_recommendations(report);
  EXPECT_EQ(report.recommendations[0].id, "a-tied");
  EXPECT_EQ(report.recommendations[1].id, "z-tied");
  EXPECT_EQ(report.recommendations[2].id, "b-small");
}

TEST(Advice, RenderNamesScenarioVerdictsAndEvidence) {
  const std::string text = render_advice(sample_report());
  EXPECT_NE(text.find("chaos:bigdft"), std::string::npos);
  EXPECT_NE(text.find("remap-ranks"), std::string::npos);
  EXPECT_NE(text.find("accepted"), std::string::npos);
  EXPECT_NE(text.find("mb-analysis/stragglers/0"), std::string::npos);
  EXPECT_NE(text.find("verdicts applied"), std::string::npos);
}

}  // namespace
}  // namespace mb::advise
