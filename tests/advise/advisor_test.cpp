// Per-kind fire + silent fixtures for the recommendation rules. Each rule
// gets a synthetic scenario where its evidence is unambiguous (fire) and
// a close variant where one required ingredient is missing (silent) — the
// advisor must never speak without both the measured and the static leg.
#include "advise/advisor.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::advise {
namespace {

// A measured 8-rank / 4-node run whose wait concentrates on node 1's
// ranks (2 and 3), matching a fault-plan slowdown of that node.
struct ScenarioFixture {
  obs::Analysis analysis;
  verify::CostReport cost;
  fault::FaultPlan plan;

  ScenarioFixture() {
    analysis.makespan_s = 10.0;
    obs::Straggler s2;
    s2.rank = 2;
    s2.attributed_wait_s = 2.0;
    s2.share = 0.45;
    obs::Straggler s3;
    s3.rank = 3;
    s3.attributed_wait_s = 1.8;
    s3.share = 0.4;
    analysis.stragglers = {s2, s3};

    obs::CollectiveStats stats;
    stats.label = "energy";
    stats.instances = 6;
    stats.median_duration_s = 0.2;
    analysis.collectives = {stats};

    cost.ranks = 8;
    cost.nodes = 4;
    cost.mtu_bytes = 1500;
    cost.makespan_lower_s = 8.0;
    verify::CollectiveCost cc;
    cc.kind = mpi::Op::Kind::kAllreduce;
    cc.label = "energy";
    cc.payload_bytes = 64;  // 64 / (14 rounds * 8 ranks) << mtu
    cost.collectives = {cc};

    fault::NodeSlowdown slow;
    slow.node = 1;
    slow.at_s = 0.0;
    slow.until_s = 5.0;
    slow.factor = 5.0;
    plan.slowdowns = {slow};
  }

  ScenarioFacts facts() const {
    ScenarioFacts f;
    f.analysis = &analysis;
    f.cost = &cost;
    f.plan = &plan;
    f.ranks = 8;
    f.nodes = 4;
    f.cores_per_node = 2;
    f.measured_makespan_s = 10.0;
    return f;
  }
};

const Recommendation* find_kind(const std::vector<Recommendation>& recs,
                                Kind kind) {
  for (const Recommendation& r : recs)
    if (r.kind == kind) return &r;
  return nullptr;
}

TEST(AdvisorRemap, FiresOnSlowedNodeCarryingTheWait) {
  ScenarioFixture fx;
  const auto recs = advise_scenario(fx.facts());
  const Recommendation* r = find_kind(recs, Kind::kRemapRanks);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, "remap-ranks:node1");
  EXPECT_EQ(r->target, "node1");
  EXPECT_DOUBLE_EQ(r->proposed_value, 1.0);
  EXPECT_TRUE(r->appliable);
  EXPECT_GT(r->predicted_delta_lo, 0.0);
  EXPECT_LE(r->predicted_delta_lo, r->predicted_delta_hi);
  EXPECT_LE(r->predicted_delta_hi, 0.9);
  // Evidence: both straggling ranks plus the plan's slowdown window.
  EXPECT_GE(r->evidence.size(), 3u);
  EXPECT_EQ(r->evidence.back().artifact, "mb-fault-plan");
}

TEST(AdvisorRemap, SilentWhenWaitIsBelowTheFloor) {
  ScenarioFixture fx;
  for (obs::Straggler& s : fx.analysis.stragglers)
    s.attributed_wait_s = 0.01;  // 0.2% of makespan < 2% floor
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kRemapRanks), nullptr);
}

TEST(AdvisorRemap, SilentWithoutAFaultPlan) {
  ScenarioFixture fx;
  ScenarioFacts f = fx.facts();
  f.plan = nullptr;
  EXPECT_EQ(find_kind(advise_scenario(f), Kind::kRemapRanks), nullptr);
}

TEST(AdvisorRemap, SilentWhenTheSlowedNodeCarriesNoWait) {
  ScenarioFixture fx;
  // Move the measured wait to node 0's ranks: the plan and the timeline
  // no longer agree, so the rule must not speak.
  fx.analysis.stragglers[0].rank = 0;
  fx.analysis.stragglers[1].rank = 1;
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kRemapRanks), nullptr);
}

TEST(AdvisorCollective, FiresOnSubMtuAllreduceSeenInBothViews) {
  ScenarioFixture fx;
  const auto recs = advise_scenario(fx.facts());
  const Recommendation* r = find_kind(recs, Kind::kSwitchCollective);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, "switch-collective:energy");
  EXPECT_EQ(r->target, "energy");
  EXPECT_TRUE(r->appliable);
  EXPECT_DOUBLE_EQ(r->predicted_delta_lo, 0.0);
  // 6 instances * 0.2 s * (1 - 6/14 rounds) / 10 s makespan
  EXPECT_NEAR(r->predicted_delta_hi, 0.0686, 0.001);
}

TEST(AdvisorCollective, SilentWhenSegmentsFillTheMtu) {
  ScenarioFixture fx;
  fx.cost.collectives[0].payload_bytes =
      static_cast<std::uint64_t>(1500) * 14 * 8 * 2;
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kSwitchCollective), nullptr);
}

TEST(AdvisorCollective, SilentBelowTheRankFloor) {
  ScenarioFixture fx;
  fx.cost.ranks = 4;
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kSwitchCollective), nullptr);
}

TEST(AdvisorCollective, SilentWithoutMeasuredInstances) {
  ScenarioFixture fx;
  fx.analysis.collectives.clear();  // static view alone is not enough
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kSwitchCollective), nullptr);
}

TEST(AdvisorCheckpoint, FiresWhenIntervalIsFarFromYoungsOptimum) {
  ScenarioFixture fx;
  fault::NodeCrash crash;
  crash.node = 0;
  crash.at_s = 50.0;
  fx.plan.crashes = {crash};
  fx.plan.checkpoint.enabled = true;
  fx.plan.checkpoint.interval_s = 1000.0;
  ScenarioFacts f = fx.facts();
  f.measured_makespan_s = 100.0;
  const auto recs = advise_scenario(f);
  const Recommendation* r = find_kind(recs, Kind::kCheckpointInterval);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->appliable);
  // horizon = makespan_lower 8? no: max(makespan_lower_s=8, last crash 50)
  // = 50, MTBF 50, C = 64 MiB / 100 MB/s = 0.671 s, optimal ~ 8.2 s.
  EXPECT_NEAR(r->proposed_value, 8.2, 0.3);
  EXPECT_GT(r->predicted_delta_hi, 0.0);
}

TEST(AdvisorCheckpoint, SilentInsideTheAcceptanceBand) {
  ScenarioFixture fx;
  fault::NodeCrash crash;
  crash.node = 0;
  crash.at_s = 50.0;
  fx.plan.crashes = {crash};
  fx.plan.checkpoint.enabled = true;
  fx.plan.checkpoint.interval_s = 10.0;  // within 4x of ~8.2 s
  const auto recs = advise_scenario(fx.facts());
  EXPECT_EQ(find_kind(recs, Kind::kCheckpointInterval), nullptr);
}

TEST(AdvisorCheckpoint, SilentWithoutCrashesOrCheckpointing) {
  ScenarioFixture fx;
  fx.plan.checkpoint.enabled = true;  // no crashes -> no MTBF
  EXPECT_EQ(find_kind(advise_scenario(fx.facts()),
                      Kind::kCheckpointInterval),
            nullptr);
  fault::NodeCrash crash;
  fx.plan.crashes = {crash};
  fx.plan.checkpoint.enabled = false;  // crashes but no checkpoint model
  EXPECT_EQ(find_kind(advise_scenario(fx.facts()),
                      Kind::kCheckpointInterval),
            nullptr);
}

TEST(AdvisorSimJobs, AdvisoryAtScaleOnly) {
  ScenarioFixture fx;
  ScenarioFacts f = fx.facts();
  f.ranks = 512;
  f.sim_jobs = 0;
  const auto recs = advise_scenario(f);
  const Recommendation* r = find_kind(recs, Kind::kSimJobs);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->appliable);
  EXPECT_EQ(r->verdict, Verdict::kAdvisory);
  EXPECT_FALSE(r->verdict_reason.empty());

  f.sim_jobs = 8;  // already sharded
  EXPECT_EQ(find_kind(advise_scenario(f), Kind::kSimJobs), nullptr);
  f.sim_jobs = 0;
  f.ranks = 8;  // too small to matter
  EXPECT_EQ(find_kind(advise_scenario(f), Kind::kSimJobs), nullptr);
}

sim::HierarchicalPoint scalar_bound_placement() {
  sim::HierarchicalPoint p;
  p.name = "magicfilter";
  p.bound_by = "scalar DP";
  p.roofline_fraction = 0.4;
  p.vector_headroom = 2.0;
  return p;
}

TEST(AdvisorKernel, ProposesTheBestVariantWithABracket) {
  const std::vector<KernelSweepPoint> sweep = {
      {1, 100.0}, {4, 60.0}, {8, 80.0}};
  const auto recs =
      advise_kernel(arch::tegra2_node(), "magicfilter", sweep, 1,
                    scalar_bound_placement());
  ASSERT_EQ(recs.size(), 1u);
  const Recommendation& r = recs[0];
  EXPECT_EQ(r.id, "kernel-variant:magicfilter:unroll4");
  EXPECT_EQ(r.kind, Kind::kKernelVariant);
  EXPECT_DOUBLE_EQ(r.proposed_value, 4.0);
  // gain 40%: bracket [0.5 * gain, 1.5 * gain]
  EXPECT_DOUBLE_EQ(r.predicted_delta_lo, 0.2);
  EXPECT_DOUBLE_EQ(r.predicted_delta_hi, 0.6);
  EXPECT_TRUE(r.appliable);
  ASSERT_EQ(r.evidence.size(), 2u);
  EXPECT_EQ(r.evidence[1].artifact, "mb-roofline");
  // The placement reported vector headroom > 1.5: the evidence must
  // mention the vectorization hint.
  EXPECT_NE(r.evidence[1].detail.find("headroom"), std::string::npos);
}

TEST(AdvisorKernel, SilentWhenCurrentIsBestOrGainTiny) {
  const sim::HierarchicalPoint placement = scalar_bound_placement();
  EXPECT_TRUE(advise_kernel(arch::tegra2_node(), "k",
                            {{1, 60.0}, {4, 100.0}}, 1, placement)
                  .empty());
  EXPECT_TRUE(advise_kernel(arch::tegra2_node(), "k",
                            {{1, 100.0}, {4, 99.5}}, 1, placement)
                  .empty());
}

TEST(AdvisorKernel, RequiresTheCurrentVariantInTheSweep) {
  EXPECT_THROW(advise_kernel(arch::tegra2_node(), "k", {{4, 60.0}}, 1,
                             scalar_bound_placement()),
               support::Error);
}

}  // namespace
}  // namespace mb::advise
