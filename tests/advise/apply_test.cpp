// Guarded apply: the acceptance rule (compare significance AND the
// measured delta inside the predicted bracket), seed pairing across arms,
// and the allreduce rewrite. Arms here are synthetic functions so each
// verdict path is driven deterministically.
#include "advise/apply.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/check.h"

namespace mb::advise {
namespace {

Recommendation appliable_rec(double lo, double hi) {
  Recommendation r;
  r.id = "remap-ranks:node1";
  r.kind = Kind::kRemapRanks;
  r.metric = "seconds";
  r.predicted_delta_lo = lo;
  r.predicted_delta_hi = hi;
  r.appliable = true;
  return r;
}

ApplyOptions test_options() {
  ApplyOptions options;
  options.campaign.cache = false;  // hermetic: no on-disk cache
  options.reps = 3;
  options.seed = 2013;
  return options;
}

Arm constant_arm(std::string name, double value) {
  return Arm{std::move(name), [value](std::uint64_t) { return value; }};
}

TEST(Apply, AcceptsWhenMeasuredDeltaLandsInsideTheBracket) {
  Recommendation rec = appliable_rec(0.1, 0.3);
  verify_recommendation(rec, "test", constant_arm("baseline", 10.0),
                        constant_arm(rec.id, 8.0), test_options());
  EXPECT_EQ(rec.verdict, Verdict::kAccepted);
  EXPECT_DOUBLE_EQ(rec.measured_baseline, 10.0);
  EXPECT_DOUBLE_EQ(rec.measured_candidate, 8.0);
  EXPECT_DOUBLE_EQ(rec.measured_delta, 0.2);
  // The property the golden fixtures pin: an accepted recommendation's
  // prediction brackets what was actually measured.
  EXPECT_GE(rec.measured_delta, rec.predicted_delta_lo);
  EXPECT_LE(rec.measured_delta, rec.predicted_delta_hi);
}

TEST(Apply, RejectsARealImprovementOutsideTheBracket) {
  // The change helps (60% faster) but the advisor promised 10-30%: the
  // model was wrong, and the verdict must say so rather than take credit.
  Recommendation rec = appliable_rec(0.1, 0.3);
  verify_recommendation(rec, "test", constant_arm("baseline", 10.0),
                        constant_arm(rec.id, 4.0), test_options());
  EXPECT_EQ(rec.verdict, Verdict::kRejected);
  EXPECT_NE(rec.verdict_reason.find("outside the predicted bracket"),
            std::string::npos);
}

TEST(Apply, RejectsADeltaBelowTheNoiseModel) {
  // 0.1% improvement: under the 2% min_rel floor, compare calls it
  // unchanged regardless of variance.
  Recommendation rec = appliable_rec(0.0, 0.3);
  verify_recommendation(rec, "test", constant_arm("baseline", 10.0),
                        constant_arm(rec.id, 9.99), test_options());
  EXPECT_EQ(rec.verdict, Verdict::kRejected);
  EXPECT_NE(rec.verdict_reason.find("noise model"), std::string::npos);
}

TEST(Apply, RejectsARegression) {
  Recommendation rec = appliable_rec(0.0, 0.5);
  verify_recommendation(rec, "test", constant_arm("baseline", 10.0),
                        constant_arm(rec.id, 12.0), test_options());
  EXPECT_EQ(rec.verdict, Verdict::kRejected);
  EXPECT_LT(rec.measured_delta, 0.0);
}

TEST(Apply, NoopForNonAppliableRecommendations) {
  Recommendation rec;
  rec.appliable = false;
  rec.verdict = Verdict::kAdvisory;
  verify_recommendation(rec, "test", constant_arm("baseline", 10.0),
                        constant_arm("candidate", 1.0), test_options());
  EXPECT_EQ(rec.verdict, Verdict::kAdvisory);
  EXPECT_DOUBLE_EQ(rec.measured_baseline, 0.0);
}

TEST(Apply, RepSeedsArePairedAcrossArms) {
  std::vector<std::uint64_t> baseline_seeds, candidate_seeds;
  Recommendation rec = appliable_rec(0.0, 0.9);
  const Arm baseline{"baseline", [&](std::uint64_t s) {
                       baseline_seeds.push_back(s);
                       return 10.0;
                     }};
  const Arm candidate{rec.id, [&](std::uint64_t s) {
                        candidate_seeds.push_back(s);
                        return 8.0;
                      }};
  verify_recommendation(rec, "test", baseline, candidate, test_options());
  ASSERT_EQ(baseline_seeds.size(), 3u);
  EXPECT_EQ(baseline_seeds, candidate_seeds);  // rep i paired
  EXPECT_EQ(std::set<std::uint64_t>(baseline_seeds.begin(),
                                    baseline_seeds.end())
                .size(),
            3u);  // but reps are independent
}

TEST(Apply, VerdictIsDeterministic) {
  Recommendation a = appliable_rec(0.1, 0.3);
  Recommendation b = a;
  const auto options = test_options();
  verify_recommendation(a, "test", constant_arm("baseline", 10.0),
                        constant_arm(a.id, 8.0), options);
  verify_recommendation(b, "test", constant_arm("baseline", 10.0),
                        constant_arm(b.id, 8.0), options);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_DOUBLE_EQ(a.measured_delta, b.measured_delta);
  EXPECT_EQ(a.verdict_reason, b.verdict_reason);
}

TEST(Apply, RewriteAllreduceSplitsOnlyTheNamedCollective) {
  mpi::Program program(4);
  for (std::uint32_t r = 0; r < 4; ++r) {
    program.append(r, mpi::Op::compute(1.0));
    program.append(r, mpi::Op::allreduce(64, "energy"));
    program.append(r, mpi::Op::allreduce(1 << 20, "density"));
  }
  const mpi::Program rewritten = rewrite_allreduce(program, "energy");
  for (std::uint32_t r = 0; r < 4; ++r) {
    const auto& ops = rewritten.rank(r);
    ASSERT_EQ(ops.size(), 4u);  // compute, reduce, bcast, allreduce
    EXPECT_EQ(ops[0].kind, mpi::Op::Kind::kCompute);
    EXPECT_EQ(ops[1].kind, mpi::Op::Kind::kReduce);
    EXPECT_EQ(ops[1].label, "energy");
    EXPECT_EQ(ops[1].bytes, 64u);
    EXPECT_EQ(ops[1].root, 0u);
    EXPECT_EQ(ops[2].kind, mpi::Op::Kind::kBcast);
    EXPECT_EQ(ops[2].label, "energy");
    EXPECT_EQ(ops[3].kind, mpi::Op::Kind::kAllreduce);
    EXPECT_EQ(ops[3].label, "density");
  }
}

}  // namespace
}  // namespace mb::advise
