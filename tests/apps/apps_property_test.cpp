// Property sweeps over the application models: for every rank count the
// programs must execute deadlock-free with physically sane timing.
#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "apps/hpl.h"
#include "apps/specfem.h"

namespace mb::apps {
namespace {

class RankSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RankSweep, BigDftRunsAndScalesSanely) {
  const std::uint32_t ranks = GetParam();
  BigDftParams p;
  p.ranks = ranks;
  p.iterations = 2;
  p.compute_s_per_iter = 1.0;
  p.transpose_bytes = 8ull << 20;
  const auto r = run_bigdft(tibidabo_cluster(std::max(1u, ranks / 2)), p);
  // Makespan at least the per-rank compute, at most the sequential time
  // plus a generous communication allowance.
  EXPECT_GE(r.makespan_s, p.iterations * p.compute_s_per_iter / ranks);
  EXPECT_LT(r.makespan_s, p.iterations * p.compute_s_per_iter + 10.0);
}

TEST_P(RankSweep, BigDftMoreIterationsTakeLonger) {
  const std::uint32_t ranks = GetParam();
  BigDftParams p;
  p.ranks = ranks;
  p.compute_s_per_iter = 1.0;
  p.transpose_bytes = 8ull << 20;
  p.iterations = 2;
  const double two =
      run_bigdft(tibidabo_cluster(std::max(1u, ranks / 2)), p).makespan_s;
  p.iterations = 4;
  const double four =
      run_bigdft(tibidabo_cluster(std::max(1u, ranks / 2)), p).makespan_s;
  EXPECT_GT(four, 1.5 * two);
}

TEST_P(RankSweep, SpecfemHaloTraffic) {
  const std::uint32_t ranks = GetParam();
  if (ranks < 4) return;  // memory constraint: >= 2 nodes
  SpecfemParams p;
  p.ranks = ranks;
  p.steps = 3;
  p.compute_s_per_step = 2.0;
  const auto r = run_specfem(tibidabo_cluster(ranks / 2), p);
  EXPECT_GT(r.makespan_s, p.steps * p.compute_s_per_step / ranks);
  // P2P halos never overflow the switch buffers.
  EXPECT_EQ(r.network_drops, 0u);
}

TEST_P(RankSweep, HplEfficiencyBounded) {
  const std::uint32_t ranks = GetParam();
  HplParams p;
  p.ranks = ranks;
  p.n = 8192;
  p.block = 256;
  auto cluster = tibidabo_cluster(std::max(1u, ranks / 2));
  cluster.mtu_bytes = 1u << 20;
  const auto r = run_hpl(cluster, p);
  const double ideal = p.total_flops() * p.seconds_per_flop / ranks;
  EXPECT_GE(r.makespan_s, ideal * 0.99);
  const double efficiency = ideal / r.makespan_s;
  EXPECT_GT(efficiency, 0.2);
  EXPECT_LE(efficiency, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(2u, 4u, 6u, 8u, 16u, 36u),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mb::apps
