#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "stats/scaling.h"
#include "support/check.h"

namespace mb::apps {
namespace {

// Strong-scaling sweep helper: time per rank count (ranks = 2 * nodes).
template <typename RunFn>
std::vector<stats::ScalingPoint> scale(const std::vector<int>& cores,
                                       RunFn run) {
  std::vector<double> times;
  for (int c : cores) times.push_back(run(static_cast<std::uint32_t>(c)));
  return stats::strong_scaling(cores, times);
}

// Small, fast instances for unit tests; the bench uses paper-sized ones.

double bigdft_time(std::uint32_t cores) {
  BigDftParams p;
  p.ranks = cores;
  p.iterations = 3;
  p.compute_s_per_iter = 2.0;
  p.transpose_bytes = 24ull << 20;
  const auto cluster = tibidabo_cluster(std::max(1u, cores / 2));
  return run_bigdft(cluster, p).makespan_s;
}

double specfem_time(std::uint32_t cores) {
  SpecfemParams p;
  p.ranks = cores;
  p.steps = 4;
  p.compute_s_per_step = 6.0;
  const auto cluster = tibidabo_cluster(std::max(1u, cores / 2));
  return run_specfem(cluster, p).makespan_s;
}

double hpl_time(std::uint32_t cores) {
  HplParams p;
  p.ranks = cores;
  p.n = 32768;  // HPL is run at memory-filling N, as on the real Tibidabo
  p.block = 128;
  auto cluster = tibidabo_cluster(std::max(1u, cores / 2));
  // Month-scale runs: coarsen frames (1 MB) — congestion fidelity is not
  // the point of Fig. 3a, broadcast/update overlap structure is.
  cluster.mtu_bytes = 1u << 20;
  return run_hpl(cluster, p).makespan_s;
}

TEST(BigDft, ProgramShape) {
  BigDftParams p;
  p.ranks = 4;
  p.iterations = 2;
  const auto prog = bigdft_program(p);
  EXPECT_EQ(prog.ranks(), 4u);
  // Axis-by-axis structure: one compute slice before each transpose.
  int computes = 0, a2a = 0;
  for (const auto& op : prog.rank(0)) {
    if (op.kind == mpi::Op::Kind::kCompute) ++computes;
    if (op.kind == mpi::Op::Kind::kAlltoallv) ++a2a;
  }
  EXPECT_EQ(a2a, 4);  // 2 transposes x 2 iterations
  EXPECT_EQ(computes, 4);
}

TEST(BigDft, RunsAndTraces) {
  BigDftParams p;
  p.ranks = 8;
  p.iterations = 2;
  const auto result = run_bigdft(tibidabo_cluster(4), p);
  EXPECT_GT(result.makespan_s, 0.0);
  const auto recs =
      result.trace.filter(trace::EventKind::kCollective, "alltoallv");
  EXPECT_EQ(recs.size(), 8u * 2 * 2);  // ranks x transposes x iterations
}

TEST(BigDft, EfficiencyCollapsesAtScale) {
  // Fig. 3c: "BigDFT's case is more troubling as its efficiency drops
  // rapidly."
  const auto series = scale({2, 8, 16, 36}, bigdft_time);
  EXPECT_LT(stats::final_efficiency(series), 0.65);
}

TEST(BigDft, NetworkDropsAppearAtScale) {
  BigDftParams p;
  p.ranks = 36;
  p.iterations = 3;
  p.compute_s_per_iter = 2.0;
  const auto result = run_bigdft(tibidabo_cluster(18), p);
  EXPECT_GT(result.network_drops, 0u);
}

TEST(Specfem, MemoryConstraintEnforced) {
  SpecfemParams p;
  p.ranks = 2;  // one node cannot hold the instance
  EXPECT_THROW(specfem_program(p), support::Error);
  EXPECT_EQ(p.min_ranks(), 4u);  // 1.5 GB instance on 1 GB nodes -> 2 nodes
}

TEST(Specfem, ScalesNearlyIdeally) {
  // Fig. 3b: ~90% efficiency versus the 4-core baseline.
  const auto series = scale({4, 16, 64, 192}, specfem_time);
  EXPECT_GT(stats::final_efficiency(series), 0.80);
}

TEST(Specfem, BetterThanBigDftAtSameScale) {
  const auto spec = scale({4, 36}, specfem_time);
  const auto big = scale({4, 36}, bigdft_time);
  EXPECT_GT(stats::final_efficiency(spec),
            stats::final_efficiency(big) + 0.15);
}

TEST(Hpl, ProgramComputesAllPanels) {
  HplParams p;
  p.ranks = 4;
  p.n = 512;
  p.block = 128;
  const auto prog = hpl_program(p);
  int updates = 0;
  for (const auto& op : prog.rank(0))
    if (op.kind == mpi::Op::Kind::kCompute && op.label == "trailing_update")
      ++updates;
  EXPECT_EQ(updates, 4);  // n / block panels
}

TEST(Hpl, EfficiencyNear80PercentAt100Cores) {
  // Fig. 3a: "close to 80% efficiency for 100 nodes" (cores in our axis).
  const auto series = scale({2, 8, 32, 100}, hpl_time);
  const double eff = stats::final_efficiency(series);
  EXPECT_GT(eff, 0.65);
  EXPECT_LT(eff, 0.97);
}

TEST(Hpl, SpeedupLinearAfter32Cores) {
  // Fig. 3a: "the speedup curve is linear after 32 nodes".
  const auto series = scale({2, 8, 32, 48, 64, 80, 100}, hpl_time);
  EXPECT_TRUE(stats::tail_is_linear(series, 32));
}

TEST(Hpl, GflopsComputation) {
  HplParams p;
  p.n = 1024;
  EXPECT_NEAR(hpl_gflops(p, 1.0), 2.0 * 1024.0 * 1024 * 1024 / 3.0 / 1e9,
              1e-9);
  EXPECT_THROW(hpl_gflops(p, 0.0), support::Error);
}

TEST(Cluster, UpgradedNetworkHelpsBigDft) {
  // Sec. IV: "this problem is to be fixed by upgrading the Ethernet
  // switches used on Tibidabo."
  BigDftParams p;
  p.ranks = 36;
  p.iterations = 3;
  const double stock = run_bigdft(tibidabo_cluster(18), p).makespan_s;
  const double upgraded = run_bigdft(upgraded_cluster(18), p).makespan_s;
  EXPECT_LT(upgraded, 0.8 * stock);
}

TEST(Cluster, RankCountMustMatchNodes) {
  BigDftParams p;
  p.ranks = 6;
  EXPECT_THROW(run_bigdft(tibidabo_cluster(2), p), support::Error);
}

TEST(Cluster, RanksOnNodeFollowsNodeMajorPackingByDefault) {
  ClusterConfig config = tibidabo_cluster(4);
  EXPECT_EQ(ranks_on_node(config, 0),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(ranks_on_node(config, 3),
            (std::vector<std::uint32_t>{6, 7}));
}

TEST(Cluster, RankMapOverridesPlacementAndLeavesSparesEmpty) {
  ClusterConfig config = tibidabo_cluster(4);
  // Swap nodes 1 and 3 (the advisor's remap move in miniature).
  config.rank_map = {0, 0, 3, 3, 2, 2, 1, 1};
  EXPECT_EQ(ranks_on_node(config, 3),
            (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(ranks_on_node(config, 1),
            (std::vector<std::uint32_t>{6, 7}));
}

TEST(Cluster, RankMapIsValidatedAgainstTheCluster) {
  BigDftParams p;
  p.ranks = 8;
  p.iterations = 1;
  {
    ClusterConfig config = tibidabo_cluster(4);
    config.rank_map = {0, 0, 1};  // wrong cardinality
    EXPECT_THROW(run_bigdft(config, p), support::Error);
  }
  {
    ClusterConfig config = tibidabo_cluster(4);
    config.rank_map = {0, 0, 1, 1, 2, 2, 9, 3};  // node outside cluster
    EXPECT_THROW(run_bigdft(config, p), support::Error);
  }
  {
    ClusterConfig config = tibidabo_cluster(4);
    config.rank_map = {0, 0, 0, 1, 2, 2, 3, 3};  // node 0 oversubscribed
    EXPECT_THROW(run_bigdft(config, p), support::Error);
  }
}

TEST(Cluster, RemappedPlacementStillRunsToCompletion) {
  BigDftParams p;
  p.ranks = 8;
  p.iterations = 2;
  ClusterConfig config = tibidabo_cluster(5);  // node 4 starts spare
  config.rank_map = {0, 0, 4, 4, 2, 2, 3, 3};  // node 1 vacated
  const auto remapped = run_bigdft(config, p);
  EXPECT_GT(remapped.makespan_s, 0.0);
  // Identical topology modulo which node hosts ranks 2,3: makespan
  // matches the default packing on the same 5-node cluster.
  ClusterConfig packed = tibidabo_cluster(5);
  packed.rank_map = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(run_bigdft(packed, p).makespan_s, remapped.makespan_s,
              0.2 * remapped.makespan_s);
}

}  // namespace
}  // namespace mb::apps
