// End-to-end determinism: the whole stack (kernels, machine, DES network,
// MPI runtime, applications) is seeded and must be bit-reproducible —
// the property the paper's methodology chapter is ultimately about being
// able to *rely* on.
#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "arch/platforms.h"
#include "kernels/chessbench.h"
#include "kernels/linpack.h"
#include "kernels/membench.h"

namespace mb::apps {
namespace {

TEST(Determinism, BigDftRunsAreBitIdentical) {
  BigDftParams p;
  p.ranks = 16;
  p.iterations = 3;
  const double a = run_bigdft(tibidabo_cluster(8), p).makespan_s;
  const double b = run_bigdft(tibidabo_cluster(8), p).makespan_s;
  EXPECT_EQ(a, b);
}

TEST(Determinism, SeedChangesBigDftSchedule) {
  BigDftParams p;
  p.ranks = 16;
  p.iterations = 3;
  const double a = run_bigdft(tibidabo_cluster(8), p).makespan_s;
  p.seed = 99;
  const double b = run_bigdft(tibidabo_cluster(8), p).makespan_s;
  EXPECT_NE(a, b);  // imbalance skew differs
}

TEST(Determinism, SpecfemAndHplIdentical) {
  SpecfemParams sp;
  sp.ranks = 8;
  sp.steps = 3;
  EXPECT_EQ(run_specfem(tibidabo_cluster(4), sp).makespan_s,
            run_specfem(tibidabo_cluster(4), sp).makespan_s);
  HplParams hp;
  hp.ranks = 8;
  hp.n = 4096;
  hp.block = 256;
  auto cluster = tibidabo_cluster(4);
  cluster.mtu_bytes = 1u << 20;
  EXPECT_EQ(run_hpl(cluster, hp).makespan_s,
            run_hpl(cluster, hp).makespan_s);
}

TEST(Determinism, MachineRunsAreBitIdentical) {
  auto run_once = [] {
    sim::Machine m(arch::snowball(), sim::PagePolicy::kRandom,
                   support::Rng(77));
    kernels::MembenchParams p;
    p.array_bytes = 40 * 1024;
    return kernels::membench_run(m, p).sim.seconds;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, KernelCountsAreStable) {
  kernels::ChessbenchParams cp;
  cp.depth = 3;
  cp.positions = 2;
  EXPECT_EQ(kernels::chessbench_native(cp).nodes,
            kernels::chessbench_native(cp).nodes);
  kernels::LinpackParams lp;
  lp.n = 48;
  lp.block = 16;
  EXPECT_EQ(kernels::linpack_native(lp).flops,
            kernels::linpack_native(lp).flops);
}

}  // namespace
}  // namespace mb::apps
