#include "apps/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "support/check.h"

namespace mb::apps {
namespace {

TEST(Registry, ElevenApplicationsAsInTable1) {
  EXPECT_EQ(montblanc_applications().size(), 11u);
}

TEST(Registry, CodesAreUnique) {
  std::set<std::string> codes;
  for (const auto& app : montblanc_applications()) codes.insert(app.code);
  EXPECT_EQ(codes.size(), 11u);
}

TEST(Registry, PaperStudiedAppsPresent) {
  EXPECT_EQ(find_application("BigDFT").domain, "Electronic Structure");
  EXPECT_EQ(find_application("BigDFT").institution, "CEA");
  EXPECT_EQ(find_application("SPECFEM3D").domain, "Wave Propagation");
  EXPECT_EQ(find_application("SPECFEM3D").institution, "CNRS");
}

TEST(Registry, DomainsMatchTable1) {
  EXPECT_EQ(find_application("YALES2").domain, "Combustion");
  EXPECT_EQ(find_application("COSMO").domain, "Weather Forecast");
  EXPECT_EQ(find_application("BQCD").domain, "Particle Physics");
  EXPECT_EQ(find_application("SMMP").domain, "Protein Folding");
}

TEST(Registry, UnknownCodeThrows) {
  EXPECT_THROW(find_application("HPL"), support::Error);
}

}  // namespace
}  // namespace mb::apps
