// Serial-vs-parallel byte-identity at scale: the sharded
// conservative-lookahead engine must reproduce the classic serial
// engine's results bit for bit — makespans compared as doubles (no
// tolerance), drop counters exactly, and the Paraver trace bytes across
// sharded worker counts. This is the run_campaign discipline applied to
// the DES engine itself: parallelism is an implementation detail that
// must be invisible in every observable output.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "apps/bigdft.h"
#include "apps/cluster.h"
#include "apps/specfem.h"

namespace mb::apps {
namespace {

AppRunResult run_specfem_1024(std::uint32_t sim_jobs) {
  SpecfemParams params;
  params.ranks = 1024;
  params.steps = 2;
  params.compute_s_per_step = 200.0;
  params.halo_bytes = 64 * 1024;
  params.seed = 2013;
  ClusterConfig cluster = tibidabo_cluster(512);
  cluster.mpi.verify = false;
  cluster.sim_jobs = sim_jobs;
  return run_specfem(cluster, params);
}

AppRunResult run_bigdft_256(std::uint32_t sim_jobs) {
  BigDftParams params;
  params.ranks = 256;
  params.iterations = 1;
  params.transposes = 1;
  params.allreduces = 0;
  params.compute_s_per_iter = 100.0;
  params.transpose_bytes = 64ull << 20;
  params.seed = 2013;
  ClusterConfig cluster = tibidabo_cluster(128);
  cluster.mpi.verify = false;
  cluster.sim_jobs = sim_jobs;
  return run_bigdft(cluster, params);
}

std::string paraver_bytes(const AppRunResult& result) {
  std::ostringstream out;
  result.trace.write_paraver(out);
  return out.str();
}

TEST(ScaleIdentity, Specfem1024RanksSerialVsSharded) {
  const AppRunResult serial = run_specfem_1024(0);
  const AppRunResult sharded1 = run_specfem_1024(1);
  const AppRunResult sharded8 = run_specfem_1024(8);

  // Classic serial engine vs sharded engine, any worker count: same
  // makespan bits, same drop counters, same trace volume.
  EXPECT_EQ(serial.makespan_s, sharded1.makespan_s);
  EXPECT_EQ(serial.makespan_s, sharded8.makespan_s);
  EXPECT_EQ(serial.network_drops, sharded1.network_drops);
  EXPECT_EQ(serial.network_drops, sharded8.network_drops);
  EXPECT_EQ(serial.trace.size(), sharded8.trace.size());
  EXPECT_TRUE(serial.completed && sharded1.completed && sharded8.completed);

  // Across sharded worker counts the whole trace is byte-identical
  // (records flush rank-major for any worker count).
  EXPECT_EQ(paraver_bytes(sharded1), paraver_bytes(sharded8));
}

TEST(ScaleIdentity, BigDftCongestionCollapseIdenticalAcrossEngines) {
  // The congestion regime: the 256-rank alltoallv overruns the switch
  // buffers by design. Drop counts are the most fragile observable —
  // they depend on exact packet arrival interleaving at every port.
  const AppRunResult serial = run_bigdft_256(0);
  const AppRunResult sharded8 = run_bigdft_256(8);

  EXPECT_GT(serial.network_drops, 0u);
  EXPECT_EQ(serial.makespan_s, sharded8.makespan_s);
  EXPECT_EQ(serial.network_drops, sharded8.network_drops);
  EXPECT_EQ(serial.network_retransmits, sharded8.network_retransmits);
  EXPECT_EQ(serial.trace.size(), sharded8.trace.size());
}

}  // namespace
}  // namespace mb::apps
