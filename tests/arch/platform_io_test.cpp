#include "arch/platform_io.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::arch {
namespace {

bool platforms_equal(const Platform& a, const Platform& b) {
  if (a.name != b.name || a.cores != b.cores || a.power_w != b.power_w)
    return false;
  if (a.core.name != b.core.name || a.core.freq_hz != b.core.freq_hz ||
      a.core.issue_width != b.core.issue_width ||
      a.core.vector_bits != b.core.vector_bits ||
      a.core.vector_dp != b.core.vector_dp ||
      a.core.split_lsu != b.core.split_lsu ||
      a.core.miss_overlap != b.core.miss_overlap ||
      a.core.mshr != b.core.mshr ||
      a.core.dp_scalar_registers != b.core.dp_scalar_registers)
    return false;
  if (a.core.recip_throughput != b.core.recip_throughput) return false;
  if (a.caches.size() != b.caches.size()) return false;
  for (std::size_t i = 0; i < a.caches.size(); ++i) {
    const auto& x = a.caches[i];
    const auto& y = b.caches[i];
    if (x.name != y.name || x.size_bytes != y.size_bytes ||
        x.line_bytes != y.line_bytes ||
        x.associativity != y.associativity ||
        x.latency_cycles != y.latency_cycles || x.shared != y.shared)
      return false;
  }
  return a.mem.kind == b.mem.kind && a.mem.latency_ns == b.mem.latency_ns &&
         a.mem.bandwidth_bytes_per_s == b.mem.bandwidth_bytes_per_s &&
         a.mem.total_bytes == b.mem.total_bytes &&
         a.mem.page_bytes == b.mem.page_bytes;
}

class BuiltinRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BuiltinRoundTrip, SerializeParseIsIdentity) {
  const auto platforms = all_builtin_platforms();
  const Platform& original =
      platforms[static_cast<std::size_t>(GetParam())];
  const std::string text = serialize_platform(original);
  const Platform parsed = parse_platform(text);
  EXPECT_TRUE(platforms_equal(original, parsed)) << original.name;
  // Second round trip is byte-stable.
  EXPECT_EQ(text, serialize_platform(parsed));
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinRoundTrip,
                         ::testing::Range(0, 4));

TEST(PlatformIo, CommentsAndBlanksIgnored) {
  std::string text = serialize_platform(snowball());
  text = "# leading comment\n\n; another comment\n" + text;
  EXPECT_NO_THROW(parse_platform(text));
}

TEST(PlatformIo, MissingSectionRejected) {
  const std::string text = "name = x\ncores = 1\npower_w = 1\n";
  EXPECT_THROW(parse_platform(text), support::Error);
}

TEST(PlatformIo, UnknownSectionRejected) {
  std::string text = serialize_platform(snowball());
  text += "[gpu]\nname = nope\n";
  EXPECT_THROW(parse_platform(text), support::Error);
}

TEST(PlatformIo, DuplicateKeyRejected) {
  std::string text = serialize_platform(snowball());
  text += "name = again\n";  // duplicate in the trailing [mem] section?
  // The appended key lands in [mem], where "name" is unknown but not a
  // duplicate — craft a real duplicate instead:
  std::string dup = "name = a\nname = b\ncores = 1\npower_w = 1\n";
  EXPECT_THROW(parse_platform(dup), support::Error);
}

TEST(PlatformIo, BadNumberRejected) {
  std::string text = serialize_platform(snowball());
  const auto pos = text.find("freq_hz = ");
  text.replace(pos, text.find('\n', pos) - pos, "freq_hz = fast");
  EXPECT_THROW(parse_platform(text), support::Error);
}

TEST(PlatformIo, ValidationRunsOnParse) {
  std::string text = serialize_platform(snowball());
  const auto pos = text.find("cores = ");
  text.replace(pos, text.find('\n', pos) - pos, "cores = 0");
  EXPECT_THROW(parse_platform(text), support::Error);
}

TEST(PlatformIo, ParsedPlatformIsUsable) {
  // A hand-written minimal board (single-issue in-order microcontroller).
  const Platform p = parse_platform(serialize_platform(tegra2_node()));
  EXPECT_NEAR(p.peak_dp_gflops(), tegra2_node().peak_dp_gflops(), 1e-9);
  EXPECT_EQ(p.llc_index(), tegra2_node().llc_index());
}

}  // namespace
}  // namespace mb::arch
