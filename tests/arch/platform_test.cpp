#include "arch/platform.h"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::arch {
namespace {

Platform minimal_platform() {
  Platform p;
  p.name = "test";
  p.core.name = "core";
  p.core.freq_hz = 1e9;
  p.core.issue_width = 2;
  for (std::size_t i = 0; i < kOpClassCount; ++i)
    p.core.recip_throughput[i] = 1.0;
  CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = 32 * 1024;
  l1.line_bytes = 32;
  l1.associativity = 4;
  l1.latency_cycles = 4;
  p.caches = {l1};
  p.mem.kind = "TEST";
  p.mem.latency_ns = 100;
  p.mem.bandwidth_bytes_per_s = 1e9;
  p.mem.total_bytes = 1 << 30;
  p.power_w = 1.0;
  return p;
}

TEST(Platform, ValidatesMinimalConfig) {
  EXPECT_NO_THROW(minimal_platform().validate());
}

TEST(Platform, RejectsZeroFrequency) {
  auto p = minimal_platform();
  p.core.freq_hz = 0;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(Platform, RejectsNonPowerOfTwoLine) {
  auto p = minimal_platform();
  p.caches[0].line_bytes = 48;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(Platform, RejectsNonPowerOfTwoSets) {
  auto p = minimal_platform();
  p.caches[0].size_bytes = 3 * 32 * 4 * 100;  // 300 sets
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(Platform, RejectsMissingCaches) {
  auto p = minimal_platform();
  p.caches.clear();
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(Platform, RejectsZeroPower) {
  auto p = minimal_platform();
  p.power_w = 0;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(Platform, SecondsFromCycles) {
  const auto p = minimal_platform();
  EXPECT_DOUBLE_EQ(p.seconds(1e9), 1.0);
}

TEST(CacheConfig, SetComputation) {
  CacheConfig c;
  c.size_bytes = 32 * 1024;
  c.line_bytes = 32;
  c.associativity = 4;
  EXPECT_EQ(c.sets(), 256u);
}

TEST(OpClass, NamesAreUnique) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kOpClassCount; ++i)
    names.insert(op_class_name(static_cast<OpClass>(i)));
  EXPECT_EQ(names.size(), kOpClassCount);
}

TEST(OpClass, MemoryClassification) {
  EXPECT_TRUE(is_memory_op(OpClass::kLoad32));
  EXPECT_TRUE(is_memory_op(OpClass::kStore128));
  EXPECT_FALSE(is_memory_op(OpClass::kIntAlu));
  EXPECT_FALSE(is_memory_op(OpClass::kBranch));
}

TEST(OpClass, MemoryBytes) {
  EXPECT_EQ(memory_op_bytes(OpClass::kLoad32), 4u);
  EXPECT_EQ(memory_op_bytes(OpClass::kLoad64), 8u);
  EXPECT_EQ(memory_op_bytes(OpClass::kStore128), 16u);
  EXPECT_EQ(memory_op_bytes(OpClass::kIntAlu), 0u);
}

TEST(OpClass, WidthLookup) {
  EXPECT_EQ(load_class_for_bits(32), OpClass::kLoad32);
  EXPECT_EQ(load_class_for_bits(64), OpClass::kLoad64);
  EXPECT_EQ(load_class_for_bits(128), OpClass::kLoad128);
  EXPECT_EQ(store_class_for_bits(64), OpClass::kStore64);
  EXPECT_THROW(load_class_for_bits(16), support::Error);
  EXPECT_THROW(store_class_for_bits(256), support::Error);
}

}  // namespace
}  // namespace mb::arch
