#include "arch/platforms.h"

#include <gtest/gtest.h>

namespace mb::arch {
namespace {

TEST(Platforms, AllBuiltinsValidate) {
  for (const auto& p : all_builtin_platforms()) {
    EXPECT_NO_THROW(p.validate()) << p.name;
  }
}

TEST(Platforms, XeonPeakDpMatchesDatasheet) {
  // 4 cores x 2.66 GHz x 4 DP flops/cycle (SSE add + mul) = 42.6 GFLOPS.
  const auto p = xeon_x5550();
  EXPECT_NEAR(p.peak_dp_gflops(), 42.6, 0.5);
}

TEST(Platforms, SnowballPeakDpIsScalarVfp) {
  // NEON has no DP: peak comes from the scalar VFP pipes,
  // 2 cores x 1 GHz x 1 DP flop/cycle = 2 GFLOPS.
  const auto p = snowball();
  EXPECT_FALSE(p.core.vector_dp);
  EXPECT_NEAR(p.peak_dp_gflops(), 1.0, 1.1);
  EXPECT_LT(p.peak_dp_gflops(), 3.0);
}

TEST(Platforms, XeonToSnowballPeakRatioIsLarge) {
  // The raw capability gap that Table II's LINPACK row reflects.
  const double ratio =
      xeon_x5550().peak_dp_gflops() / snowball().peak_dp_gflops();
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 60.0);
}

TEST(Platforms, PowerGapIs38x) {
  // 95 W TDP vs 2.5 W full board: the paper's conservative accounting.
  EXPECT_NEAR(xeon_x5550().power_w / snowball().power_w, 38.0, 0.5);
}

TEST(Platforms, Tegra2HasNoVectorUnit) {
  const auto p = tegra2_node();
  EXPECT_EQ(p.core.vector_bits, 0u);
  EXPECT_EQ(recip_throughput(p.core, OpClass::kVecSp), 0.0);
}

TEST(Platforms, SnowballNeonIsSinglePrecisionOnly) {
  const auto p = snowball();
  EXPECT_GT(p.core.vector_bits, 0u);
  EXPECT_FALSE(p.core.vector_dp);
  EXPECT_EQ(recip_throughput(p.core, OpClass::kVecDp), 0.0);
  EXPECT_GT(recip_throughput(p.core, OpClass::kVecSp), 0.0);
}

TEST(Platforms, SnowballHierarchyMatchesFigure2) {
  const auto p = snowball();
  ASSERT_EQ(p.caches.size(), 2u);
  EXPECT_EQ(p.caches[0].size_bytes, 32u * 1024);
  EXPECT_FALSE(p.caches[0].shared);
  EXPECT_EQ(p.caches[1].size_bytes, 512u * 1024);
  EXPECT_TRUE(p.caches[1].shared);
  EXPECT_EQ(p.cores, 2u);
}

TEST(Platforms, XeonHierarchyMatchesFigure2) {
  const auto p = xeon_x5550();
  ASSERT_EQ(p.caches.size(), 3u);
  EXPECT_EQ(p.caches[0].size_bytes, 32u * 1024);
  EXPECT_EQ(p.caches[1].size_bytes, 256u * 1024);
  EXPECT_EQ(p.caches[2].size_bytes, 8u * 1024 * 1024);
  EXPECT_TRUE(p.caches[2].shared);
  EXPECT_EQ(p.cores, 4u);
}

TEST(Platforms, Exynos5ProjectionHasGpgpuCapableGpu) {
  const auto p = exynos5();
  ASSERT_TRUE(p.gpu.has_value());
  EXPECT_TRUE(p.gpu->general_purpose);
  EXPECT_NEAR(p.power_w, 5.0, 0.01);
}

TEST(Platforms, SnowballGpuIsNotGpgpuCapable) {
  const auto p = snowball();
  ASSERT_TRUE(p.gpu.has_value());
  EXPECT_FALSE(p.gpu->general_purpose);
}

TEST(Platforms, MemoryBandwidthOrdering) {
  // Server DDR3 >> embedded LP-DDR2 / DDR2.
  EXPECT_GT(xeon_x5550().mem.bandwidth_bytes_per_s,
            10 * snowball().mem.bandwidth_bytes_per_s);
}

}  // namespace
}  // namespace mb::arch
