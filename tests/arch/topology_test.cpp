#include "arch/topology.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"

namespace mb::arch {
namespace {

TEST(Topology, XeonShowsSharedL3AndFourCores) {
  const std::string t = render_topology(xeon_x5550());
  EXPECT_NE(t.find("Machine (12GB)"), std::string::npos);
  EXPECT_NE(t.find("L3 (8MB)"), std::string::npos);
  EXPECT_NE(t.find("Core P#0"), std::string::npos);
  EXPECT_NE(t.find("Core P#3"), std::string::npos);
  EXPECT_EQ(t.find("Core P#4"), std::string::npos);
  EXPECT_NE(t.find("L2 (256KB)"), std::string::npos);
  EXPECT_NE(t.find("L1d (32KB)"), std::string::npos);
}

TEST(Topology, SnowballShowsSharedL2AndTwoCores) {
  const std::string t = render_topology(snowball());
  EXPECT_NE(t.find("Machine (796MB)"), std::string::npos);
  EXPECT_NE(t.find("L2 (512KB)"), std::string::npos);
  EXPECT_NE(t.find("Core P#1"), std::string::npos);
  EXPECT_EQ(t.find("Core P#2"), std::string::npos);
}

TEST(Topology, SharedLevelAppearsOncePrivatePerCore) {
  const std::string t = render_topology(xeon_x5550());
  std::size_t l3_count = 0, l1_count = 0;
  for (std::size_t pos = t.find("L3 ("); pos != std::string::npos;
       pos = t.find("L3 (", pos + 1))
    ++l3_count;
  for (std::size_t pos = t.find("L1d ("); pos != std::string::npos;
       pos = t.find("L1d (", pos + 1))
    ++l1_count;
  EXPECT_EQ(l3_count, 1u);
  EXPECT_EQ(l1_count, 4u);
}

}  // namespace
}  // namespace mb::arch
