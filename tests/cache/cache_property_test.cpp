// Property sweeps over cache geometries: invariants that must hold for
// every (size, line, associativity) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.h"
#include "support/rng.h"

namespace mb::cache {
namespace {

using Geometry = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;

class CacheGeometry : public ::testing::TestWithParam<Geometry> {
 protected:
  arch::CacheConfig config() const {
    const auto [size, line, ways] = GetParam();
    arch::CacheConfig c;
    c.name = "L1";
    c.size_bytes = size;
    c.line_bytes = line;
    c.associativity = ways;
    c.latency_cycles = 4;
    return c;
  }
};

TEST_P(CacheGeometry, StreamingMissesOncePerLine) {
  Cache cache(config());
  const auto cfg = config();
  const std::uint64_t span = 4 * cfg.size_bytes;  // larger than the cache
  for (std::uint64_t a = 0; a < span; a += cfg.line_bytes)
    cache.access_line(a, false);
  EXPECT_EQ(cache.stats().misses, span / cfg.line_bytes);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_P(CacheGeometry, ResidentWorkingSetHitsOnSecondPass) {
  Cache cache(config());
  const auto cfg = config();
  // Touch exactly the cache's capacity; with LRU and a contiguous range
  // every line fits.
  for (std::uint64_t a = 0; a < cfg.size_bytes; a += cfg.line_bytes)
    cache.access_line(a, false);
  cache.reset_stats();
  for (std::uint64_t a = 0; a < cfg.size_bytes; a += cfg.line_bytes)
    cache.access_line(a, false);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_P(CacheGeometry, StatsIdentities) {
  Cache cache(config());
  support::Rng rng(7);
  const auto cfg = config();
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = rng.uniform_u64(0, 8 * cfg.size_bytes);
    cache.access_line(addr, rng.bernoulli(0.3));
  }
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(s.evictions, s.misses);
  EXPECT_LE(s.writebacks, s.evictions);
  EXPECT_GE(s.miss_ratio(), 0.0);
  EXPECT_LE(s.miss_ratio(), 1.0);
}

TEST_P(CacheGeometry, ConflictSetThrashesExactlyBeyondWays) {
  Cache cache(config());
  const auto cfg = config();
  const std::uint64_t set_stride = cfg.sets() * cfg.line_bytes;
  const std::uint32_t ways = cfg.associativity;
  // ways lines in one set: steady-state all hits.
  for (int round = 0; round < 3; ++round)
    for (std::uint32_t w = 0; w < ways; ++w)
      cache.access_line(w * set_stride, false);
  cache.reset_stats();
  for (std::uint32_t w = 0; w < ways; ++w)
    cache.access_line(w * set_stride, false);
  EXPECT_EQ(cache.stats().misses, 0u);
  // ways+1 lines cycling: every access misses under LRU.
  cache.reset_stats();
  for (int round = 0; round < 3; ++round)
    for (std::uint32_t w = 0; w < ways + 1; ++w)
      cache.access_line(w * set_stride, false);
  EXPECT_GE(cache.stats().misses, 2u * (ways + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 32, 4}, Geometry{4096, 64, 4},
                      Geometry{32 * 1024, 32, 4}, Geometry{32 * 1024, 64, 8},
                      Geometry{256 * 1024, 64, 8},
                      Geometry{1024, 64, 16}),  // fully associative
    [](const auto& info) {
      std::string name = "s";
      name += std::to_string(std::get<0>(info.param));
      name += "_l";
      name += std::to_string(std::get<1>(info.param));
      name += "_w";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace mb::cache
