#include "cache/cache.h"

#include <gtest/gtest.h>

namespace mb::cache {
namespace {

arch::CacheConfig small_cache(std::uint32_t ways) {
  arch::CacheConfig c;
  c.name = "L1";
  c.size_bytes = 1024;  // 32 lines of 32B
  c.line_bytes = 32;
  c.associativity = ways;
  c.latency_cycles = 4;
  return c;
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache(4));
  EXPECT_FALSE(c.access_line(0, false));
  EXPECT_TRUE(c.access_line(0, false));
  EXPECT_TRUE(c.access_line(31, false));  // same line
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // Direct-mapped on sets: 1024B / (32B * 2 ways) = 16 sets.
  Cache c(small_cache(2));
  const std::uint64_t set_stride = 16 * 32;  // same set every 512B
  c.access_line(0 * set_stride, false);
  c.access_line(1 * set_stride, false);
  c.access_line(0 * set_stride, false);  // refresh line 0
  c.access_line(2 * set_stride, false);  // evicts line 1 (LRU)
  EXPECT_TRUE(c.contains(0 * set_stride));
  EXPECT_FALSE(c.contains(1 * set_stride));
  EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(Cache, CyclicAccessOverAssociativityThrashes) {
  // The classic LRU pathology the paper's page-placement effect rides on:
  // k+1 lines cycling through a k-way set miss on every access.
  Cache c(small_cache(4));
  const std::uint64_t set_stride = 8 * 32;  // 8 sets with 4 ways
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r)
    for (std::uint64_t i = 0; i < 5; ++i)  // 5 lines in a 4-way set
      c.access_line(i * set_stride, false);
  // After warmup every access misses.
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, static_cast<std::uint64_t>(rounds) * 5);
}

TEST(Cache, WithinAssociativityNoThrash) {
  Cache c(small_cache(4));
  const std::uint64_t set_stride = 8 * 32;
  for (int r = 0; r < 50; ++r)
    for (std::uint64_t i = 0; i < 4; ++i)
      c.access_line(i * set_stride, false);
  EXPECT_EQ(c.stats().misses, 4u);  // cold only
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c(small_cache(1));  // direct mapped, 32 sets
  const std::uint64_t set_stride = 32 * 32;
  c.access_line(0, true);              // dirty
  c.access_line(set_stride, false);    // evicts dirty line
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.access_line(2 * set_stride, false);  // evicts clean line
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, WriteHitMarksLineDirty) {
  Cache c(small_cache(1));
  const std::uint64_t set_stride = 32 * 32;
  c.access_line(0, false);  // clean fill
  c.access_line(0, true);   // dirty via write hit
  c.access_line(set_stride, false);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, MultiByteAccessStraddlesLines) {
  Cache c(small_cache(4));
  // 16 bytes at offset 24 touches lines 0 and 1.
  const auto misses = c.access(24, 16, false);
  EXPECT_EQ(misses, 2u);
  EXPECT_EQ(c.stats().accesses, 2u);
}

TEST(Cache, AlignedAccessTouchesOneLine) {
  Cache c(small_cache(4));
  EXPECT_EQ(c.access(64, 16, false), 1u);
}

TEST(Cache, FlushInvalidatesButKeepsStats) {
  Cache c(small_cache(4));
  c.access_line(0, false);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, SetIndexMasksCorrectly) {
  Cache c(small_cache(4));  // 8 sets, 32B lines
  EXPECT_EQ(c.set_index(0), 0u);
  EXPECT_EQ(c.set_index(32), 1u);
  EXPECT_EQ(c.set_index(8 * 32), 0u);  // wraps
}

TEST(Cache, MissRatioComputation) {
  Cache c(small_cache(4));
  c.access_line(0, false);
  c.access_line(0, false);
  c.access_line(0, false);
  c.access_line(0, false);
  EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 0.25);
}

}  // namespace
}  // namespace mb::cache
