// Conservation laws of the cache hierarchy, checked across every built-in
// platform under randomized traffic: what misses level i must be exactly
// what level i+1 sees, and DRAM serves exactly the last level's misses.
#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "cache/hierarchy.h"
#include "support/rng.h"

namespace mb::cache {
namespace {

class HierarchyLaws : public ::testing::TestWithParam<int> {
 protected:
  arch::Platform platform() const {
    return arch::all_builtin_platforms()[static_cast<std::size_t>(
        GetParam())];
  }
};

TEST_P(HierarchyLaws, DemandFlowConserved) {
  const auto p = platform();
  Hierarchy h(p);
  support::Rng rng(17);
  for (int i = 0; i < 30000; ++i) {
    // Mixture of streaming and random traffic.
    const std::uint64_t addr =
        rng.bernoulli(0.5)
            ? static_cast<std::uint64_t>(i) * 16
            : rng.uniform_u64(0, 16 * 1024 * 1024);
    h.access(addr & ~3ull, 4, rng.bernoulli(0.25));
  }
  const auto s = h.stats();
  for (std::size_t lvl = 0; lvl + 1 < s.level.size(); ++lvl) {
    EXPECT_EQ(s.level[lvl].misses, s.level[lvl + 1].accesses)
        << "level " << lvl;
  }
  EXPECT_EQ(s.level.back().misses, s.memory_accesses);
  // All traffic is at least one LLC line per DRAM access.
  EXPECT_GE(s.memory_bytes,
            s.memory_accesses * p.caches.back().line_bytes);
}

TEST_P(HierarchyLaws, HitsNeverExceedAccesses) {
  const auto p = platform();
  Hierarchy h(p);
  support::Rng rng(23);
  for (int i = 0; i < 10000; ++i)
    h.access(rng.uniform_u64(0, 4 * 1024 * 1024) & ~3ull, 4, false);
  for (const auto& lvl : h.stats().level) {
    EXPECT_EQ(lvl.hits + lvl.misses, lvl.accesses);
    EXPECT_LE(lvl.writebacks, lvl.evictions);
  }
}

TEST_P(HierarchyLaws, RepeatAccessEventuallyAllHits) {
  const auto p = platform();
  Hierarchy h(p);
  // A working set well inside L1.
  const std::uint64_t ws = p.caches[0].size_bytes / 4;
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < ws; a += 8) h.access(a, 8, false);
  h.reset_stats();
  for (std::uint64_t a = 0; a < ws; a += 8) h.access(a, 8, false);
  EXPECT_EQ(h.stats().level[0].misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, HierarchyLaws,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace mb::cache
