#include "cache/hierarchy.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"

namespace mb::cache {
namespace {

std::vector<arch::CacheConfig> two_levels() {
  arch::CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = 1024;
  l1.line_bytes = 32;
  l1.associativity = 2;
  l1.latency_cycles = 4;
  arch::CacheConfig l2 = l1;
  l2.name = "L2";
  l2.size_bytes = 8192;
  l2.associativity = 4;
  l2.latency_cycles = 12;
  return {l1, l2};
}

TEST(Hierarchy, ColdMissGoesToMemory) {
  Hierarchy h(two_levels());
  const auto r = h.access(0, 32, false);
  EXPECT_EQ(r.hit_level, 2u);  // miss everywhere
  EXPECT_EQ(h.stats().memory_accesses, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h(two_levels());
  h.access(0, 4, false);
  const auto r = h.access(0, 4, false);
  EXPECT_EQ(r.hit_level, 0u);
  EXPECT_EQ(h.stats().level[0].hits, 1u);
}

TEST(Hierarchy, L1EvictionStillHitsL2) {
  Hierarchy h(two_levels());
  // L1: 16 sets x 2 ways. Fill 3 lines in L1 set 0 -> evicts the first,
  // which must still hit in the larger L2.
  const std::uint64_t l1_set_stride = 16 * 32;
  h.access(0 * l1_set_stride, 4, false);
  h.access(1 * l1_set_stride, 4, false);
  h.access(2 * l1_set_stride, 4, false);
  const auto r = h.access(0, 4, false);  // L1 miss, L2 hit
  EXPECT_EQ(r.hit_level, 1u);
  EXPECT_EQ(h.stats().memory_accesses, 3u);
}

TEST(Hierarchy, MemoryBytesIncludeWritebacks) {
  Hierarchy h(two_levels());
  h.access(0, 4, true);  // dirty in both levels
  const auto before = h.stats().memory_bytes;
  // Evict through both levels by filling the L2 set with clean lines.
  // L2: 64 sets x 4 ways; same-set stride = 64*32.
  const std::uint64_t l2_set_stride = 64 * 32;
  for (std::uint64_t i = 1; i <= 4; ++i)
    h.access(i * l2_set_stride, 4, false);
  EXPECT_GT(h.stats().memory_bytes, before);
  EXPECT_EQ(h.stats().level[1].writebacks, 1u);
}

TEST(Hierarchy, StatsResetKeepsContents) {
  Hierarchy h(two_levels());
  h.access(0, 4, false);
  h.reset_stats();
  EXPECT_EQ(h.stats().level[0].accesses, 0u);
  const auto r = h.access(0, 4, false);
  EXPECT_EQ(r.hit_level, 0u);  // still cached
}

TEST(Hierarchy, FlushColdRestart) {
  Hierarchy h(two_levels());
  h.access(0, 4, false);
  h.flush();
  const auto r = h.access(0, 4, false);
  EXPECT_EQ(r.hit_level, 2u);
}

TEST(Hierarchy, VirtualIndexingUsesVaddr) {
  auto cfgs = two_levels();
  cfgs[0].physically_indexed = false;
  Hierarchy h(cfgs);
  // Same vaddr, different paddr: virtually-indexed L1 should hit.
  h.access(/*vaddr=*/64, /*paddr=*/4096, 4, false);
  const auto r = h.access(/*vaddr=*/64, /*paddr=*/8192, 4, false);
  EXPECT_EQ(r.hit_level, 0u);
}

TEST(Hierarchy, PhysicalIndexingUsesPaddr) {
  Hierarchy h(two_levels());
  h.access(/*vaddr=*/64, /*paddr=*/4096, 4, false);
  const auto r = h.access(/*vaddr=*/64, /*paddr=*/8192, 4, false);
  EXPECT_EQ(r.hit_level, 2u);  // different physical line: full miss
}

TEST(Hierarchy, BuildsFromPlatform) {
  Hierarchy h(arch::xeon_x5550());
  EXPECT_EQ(h.levels(), 3u);
  EXPECT_EQ(h.level(2).config().name, "L3");
}

TEST(Hierarchy, StreamingMissRateMatchesLineSize) {
  Hierarchy h(two_levels());
  // Stream 4KB in 4-byte accesses: one miss per 32B line.
  for (std::uint64_t a = 0; a < 4096; a += 4) h.access(a, 4, false);
  EXPECT_EQ(h.stats().level[0].misses, 128u);
  EXPECT_EQ(h.stats().level[0].accesses, 1024u);
}

}  // namespace
}  // namespace mb::cache
