#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "cache/hierarchy.h"
#include "support/check.h"
#include "support/rng.h"

namespace mb::cache {
namespace {

Hierarchy snowball_hierarchy(bool prefetch) {
  Hierarchy h(arch::snowball());
  if (prefetch) {
    PrefetcherConfig cfg;
    cfg.enabled = true;
    h.set_prefetcher(cfg);
  }
  return h;
}

std::uint64_t stream_misses(Hierarchy& h, std::uint64_t bytes) {
  for (std::uint64_t a = 0; a < bytes; a += 4) h.access(a, 4, false);
  return h.stats().level[0].misses;
}

TEST(Prefetcher, CutsStreamingDemandMisses) {
  auto off = snowball_hierarchy(false);
  auto on = snowball_hierarchy(true);
  const std::uint64_t bytes = 2 * 1024 * 1024;  // DRAM-sized stream
  const auto misses_off = stream_misses(off, bytes);
  const auto misses_on = stream_misses(on, bytes);
  EXPECT_LT(misses_on, misses_off / 2);
  EXPECT_GT(on.stats().prefetches, 0u);
}

TEST(Prefetcher, DoesNotHelpRandomAccess) {
  auto off = snowball_hierarchy(false);
  auto on = snowball_hierarchy(true);
  support::Rng rng(5);
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 20000; ++i)
    addrs.push_back(rng.uniform_u64(0, 8 * 1024 * 1024) & ~31ull);
  for (const auto a : addrs) {
    off.access(a, 4, false);
    on.access(a, 4, false);
  }
  const auto m_off = off.stats().level[0].misses;
  const auto m_on = on.stats().level[0].misses;
  // No stream to confirm: miss counts stay within a few percent.
  EXPECT_NEAR(static_cast<double>(m_on), static_cast<double>(m_off),
              0.05 * static_cast<double>(m_off));
}

TEST(Prefetcher, PrefetchTrafficIsAccounted) {
  auto on = snowball_hierarchy(true);
  stream_misses(on, 512 * 1024);
  const auto s = on.stats();
  // Every line of the stream is paid for exactly once overall (demand
  // fill or prefetch fill): traffic equals the footprint, within slack
  // for training misses at stream starts.
  const std::uint64_t lines = 512 * 1024 / 32;
  const std::uint64_t paid = s.memory_bytes / 32;
  EXPECT_GE(paid, lines);
  EXPECT_LE(paid, lines + lines / 8);
}

TEST(Prefetcher, DisabledByDefault) {
  Hierarchy h(arch::snowball());
  EXPECT_FALSE(h.prefetcher().enabled);
  stream_misses(h, 64 * 1024);
  EXPECT_EQ(h.stats().prefetches, 0u);
}

TEST(Prefetcher, ConfigValidated) {
  Hierarchy h(arch::snowball());
  PrefetcherConfig bad;
  bad.enabled = true;
  bad.degree = 0;
  EXPECT_THROW(h.set_prefetcher(bad), support::Error);
  bad = PrefetcherConfig{};
  bad.train_threshold = 0;
  EXPECT_THROW(h.set_prefetcher(bad), support::Error);
}

TEST(FillLine, InsertsWithoutDemandStats) {
  arch::CacheConfig cfg;
  cfg.name = "L1";
  cfg.size_bytes = 1024;
  cfg.line_bytes = 32;
  cfg.associativity = 4;
  cfg.latency_cycles = 4;
  Cache c(cfg);
  c.fill_line(0);
  EXPECT_TRUE(c.contains(0));
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(FillLine, EvictionsStillCounted) {
  arch::CacheConfig cfg;
  cfg.name = "L1";
  cfg.size_bytes = 1024;
  cfg.line_bytes = 32;
  cfg.associativity = 1;  // 32 sets, direct mapped
  cfg.latency_cycles = 4;
  Cache c(cfg);
  c.access_line(0, true);           // dirty demand line
  c.fill_line(32 * 32);             // same set: evicts the dirty line
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_FALSE(c.contains(0));
}

}  // namespace
}  // namespace mb::cache
