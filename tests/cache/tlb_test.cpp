#include "cache/tlb.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::cache {
namespace {

TlbConfig small_tlb() {
  TlbConfig t;
  t.entries = 4;
  t.associativity = 4;  // fully associative
  t.page_bytes = 4096;
  return t;
}

TEST(Tlb, SamePageHitsAfterFirstAccess) {
  Tlb t(small_tlb());
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1FFF));  // same page
  EXPECT_EQ(t.stats().misses, 1u);
}

TEST(Tlb, CapacityEviction) {
  Tlb t(small_tlb());
  for (std::uint64_t p = 0; p < 5; ++p) t.access(p * 4096);
  // Page 0 is LRU and was evicted by page 4.
  EXPECT_FALSE(t.access(0));
  EXPECT_EQ(t.stats().evictions, 2u);  // page 0 evicted, then page 1
}

TEST(Tlb, LruKeepsHotPage) {
  Tlb t(small_tlb());
  for (std::uint64_t p = 0; p < 4; ++p) t.access(p * 4096);
  t.access(0);            // refresh page 0
  t.access(7 * 4096);     // evicts page 1, not page 0
  EXPECT_TRUE(t.access(0));
  EXPECT_FALSE(t.access(1 * 4096));
}

TEST(Tlb, SetAssociativeMapping) {
  TlbConfig cfg;
  cfg.entries = 4;
  cfg.associativity = 2;  // 2 sets
  cfg.page_bytes = 4096;
  Tlb t(cfg);
  // Pages 0, 2, 4 all map to set 0; 2-way -> page 0 evicted by page 4.
  t.access(0 * 4096);
  t.access(2 * 4096);
  t.access(4 * 4096);
  EXPECT_FALSE(t.access(0 * 4096));
  // Set 1 untouched: page 1 still misses cold, but page 3 after it hits.
  t.access(1 * 4096);
  EXPECT_TRUE(t.access(1 * 4096));
}

TEST(Tlb, FlushClearsEntries) {
  Tlb t(small_tlb());
  t.access(0);
  t.flush();
  EXPECT_FALSE(t.access(0));
}

TEST(Tlb, ConfigValidation) {
  TlbConfig bad;
  bad.entries = 6;
  bad.associativity = 4;  // does not divide
  EXPECT_THROW(Tlb{bad}, support::Error);
  TlbConfig bad_page = small_tlb();
  bad_page.page_bytes = 3000;
  EXPECT_THROW(Tlb{bad_page}, support::Error);
}

}  // namespace
}  // namespace mb::cache
