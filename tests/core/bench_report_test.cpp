#include "core/bench_report.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/version.h"

namespace mb::core {
namespace {

BenchReport small_report() {
  BenchReport report;
  report.suite = "unit";
  report.tool = "test";
  report.seed = 7;
  report.plan.repetitions = 3;
  report.plan.seed = 7;
  report.add_platform({"toy", 2, 1e9, 2.5, 4.0, 8.0});

  BenchRecord r;
  r.name = "kernel/toy/unroll=2";
  r.platform = "toy";
  r.metric = "seconds";
  r.unit = "s";
  r.direction = Direction::kMinimize;
  r.samples = {1.0, 1.1, 0.9};
  report.records.push_back(r);
  return report;
}

TEST(BenchReport, DirectionNamesRoundTrip) {
  EXPECT_EQ(direction_name(Direction::kMinimize), "minimize");
  EXPECT_EQ(direction_name(Direction::kMaximize), "maximize");
  EXPECT_EQ(parse_direction("minimize"), Direction::kMinimize);
  EXPECT_EQ(parse_direction("maximize"), Direction::kMaximize);
  EXPECT_THROW(parse_direction("sideways"), support::Error);
}

TEST(BenchReport, SerializesSchemaHeaderAndSummary) {
  const std::string json = to_json(small_report());
  const auto doc = support::parse_json(json);
  EXPECT_EQ(doc.at("schema").as_string(), kBenchSchemaName);
  EXPECT_EQ(doc.at("schema_version").as_number(), kBenchSchemaVersion);
  const auto& bench = doc.at("benchmarks").as_array().at(0);
  EXPECT_EQ(bench.at("direction").as_string(), "minimize");
  EXPECT_EQ(bench.at("summary").at("n").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(bench.at("summary").at("median").as_number(), 1.0);
  EXPECT_EQ(bench.at("modes").at("count").as_number(), 1.0);
}

TEST(BenchReport, RoundTripsThroughJson) {
  const BenchReport original = small_report();
  const BenchReport parsed = report_from_json(to_json(original));

  EXPECT_EQ(parsed.schema_version, kBenchSchemaVersion);
  EXPECT_EQ(parsed.suite, "unit");
  EXPECT_EQ(parsed.tool, "test");
  EXPECT_EQ(parsed.seed, 7u);
  EXPECT_EQ(parsed.plan.repetitions, 3u);
  ASSERT_EQ(parsed.platforms.size(), 1u);
  EXPECT_EQ(parsed.platforms[0].name, "toy");
  EXPECT_DOUBLE_EQ(parsed.platforms[0].peak_sp_gflops, 8.0);

  ASSERT_EQ(parsed.records.size(), 1u);
  const BenchRecord& r = parsed.records[0];
  EXPECT_EQ(r.name, "kernel/toy/unroll=2");
  EXPECT_EQ(r.metric, "seconds");
  EXPECT_EQ(r.direction, Direction::kMinimize);
  EXPECT_EQ(r.samples, original.records[0].samples);
}

TEST(BenchReport, RoundTripsAResultSet) {
  // A small harness-shaped ResultSet: 2 variants x 3 reps.
  ParamSpace space;
  space.add("unroll", {1, 4});
  ResultSet results(space.size());
  std::size_t order = 0;
  for (double v : {1.0, 1.2, 1.1}) results.add(0, v, order++);
  for (double v : {0.5, 0.6, 0.4}) results.add(1, v, order++);

  BenchReport report;
  report.suite = "unit";
  report.tool = "test";
  append_resultset(report, space, results, "kernel/toy", "toy", "seconds",
                   "s", Direction::kMinimize);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].name, "kernel/toy/unroll=1");
  EXPECT_EQ(report.records[1].name, "kernel/toy/unroll=4");

  const BenchReport parsed = report_from_json(to_json(report));
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].samples, results.samples(0));
  EXPECT_EQ(parsed.records[1].samples, results.samples(1));
  EXPECT_NE(parsed.find("kernel/toy/unroll=4"), nullptr);
  EXPECT_EQ(parsed.find("kernel/toy/unroll=8"), nullptr);
}

TEST(BenchReport, BimodalSamplesAreReportedAsTwoModes) {
  BenchReport report = small_report();
  // Fig. 5-like series: a fast mode and a ~5x degraded mode.
  report.records[0].samples = {1.0, 1.01, 0.99, 1.02, 0.98, 1.0,
                               5.0, 5.05, 4.95};
  const auto doc = support::parse_json(to_json(report));
  const auto& modes = doc.at("benchmarks").as_array().at(0).at("modes");
  EXPECT_EQ(modes.at("count").as_number(), 2.0);
  EXPECT_NEAR(modes.at("low_center").as_number(), 1.0, 0.05);
  EXPECT_NEAR(modes.at("high_center").as_number(), 5.0, 0.1);
  EXPECT_GT(modes.at("separation").as_number(), 3.0);
}

TEST(BenchReport, RejectsWrongSchemaNameOrVersion) {
  BenchReport report = small_report();
  std::string json = to_json(report);

  std::string wrong_name = json;
  wrong_name.replace(wrong_name.find("mb-bench-report"),
                     std::string("mb-bench-report").size(), "other-schema!!");
  EXPECT_THROW(report_from_json(wrong_name), support::Error);

  std::string wrong_version = json;
  wrong_version.replace(wrong_version.find("\"schema_version\": 1"),
                        std::string("\"schema_version\": 1").size(),
                        "\"schema_version\": 9");
  EXPECT_THROW(report_from_json(wrong_version), support::Error);
}

TEST(BenchReport, RejectsDuplicateRecordNames) {
  BenchReport report = small_report();
  report.records.push_back(report.records[0]);
  EXPECT_THROW(report_from_json(to_json(report)), support::Error);
}

TEST(BenchReport, RejectsEmptySampleSeries) {
  BenchReport report = small_report();
  report.records[0].samples.clear();
  EXPECT_THROW(to_json(report), support::Error);
}

TEST(BenchReport, StampsToolVersionWhenEmpty) {
  const auto doc = support::parse_json(to_json(small_report()));
  EXPECT_EQ(doc.at("tool_version").as_string(), support::version());

  BenchReport pinned = small_report();
  pinned.tool_version = "9.9.9";
  const auto pinned_doc = support::parse_json(to_json(pinned));
  EXPECT_EQ(pinned_doc.at("tool_version").as_string(), "9.9.9");
  EXPECT_EQ(report_from_json(to_json(pinned)).tool_version, "9.9.9");
}

TEST(BenchReport, MetricsSectionIsOptionalAndRoundTrips) {
  BenchReport report = small_report();
  // Without metrics the section is omitted entirely (old consumers parse).
  EXPECT_EQ(support::parse_json(to_json(report)).find("metrics"), nullptr);

  obs::MetricSample m;
  m.name = "mpi.time_s";
  m.labels = {{"kind", "collective"}};
  m.value = 1.25;
  report.metrics.push_back(m);
  const BenchReport parsed = report_from_json(to_json(report));
  ASSERT_EQ(parsed.metrics.size(), 1u);
  EXPECT_EQ(parsed.metrics[0].key(), "mpi.time_s{kind=collective}");
  EXPECT_DOUBLE_EQ(parsed.metrics[0].value, 1.25);
}

TEST(BenchReport, ParsesReportsWithoutVersionOrMetrics) {
  // A pre-observability document: no tool_version, no metrics section.
  std::string json = to_json(small_report());
  const auto pos = json.find("\"tool_version\"");
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, json.find('\n', pos) - pos + 1);
  const BenchReport parsed = report_from_json(json);
  EXPECT_TRUE(parsed.tool_version.empty());
  EXPECT_TRUE(parsed.metrics.empty());
}

TEST(BenchReport, FailureSectionIsOptionalAndRoundTrips) {
  // Reports without a failure omit the section entirely.
  const std::string clean = to_json(small_report());
  EXPECT_EQ(clean.find("\"failure\""), std::string::npos);
  EXPECT_FALSE(report_from_json(clean).failure.present);

  BenchReport report = small_report();
  report.failure.present = true;
  report.failure.dead_ranks = {3, 7};
  RunFailure::Blocked b;
  b.rank = 1;
  b.peer = 3;
  b.tag = -42;
  b.op_index = 19;
  b.since_s = 0.125;
  b.timed_out = true;
  report.failure.blocked.push_back(b);
  report.failure.detected_s = 0.5;

  const BenchReport parsed = report_from_json(to_json(report));
  ASSERT_TRUE(parsed.failure.present);
  EXPECT_EQ(parsed.failure.dead_ranks, (std::vector<std::uint32_t>{3, 7}));
  ASSERT_EQ(parsed.failure.blocked.size(), 1u);
  EXPECT_EQ(parsed.failure.blocked[0].rank, 1u);
  EXPECT_EQ(parsed.failure.blocked[0].peer, 3u);
  EXPECT_EQ(parsed.failure.blocked[0].tag, -42);
  EXPECT_EQ(parsed.failure.blocked[0].op_index, 19u);
  EXPECT_DOUBLE_EQ(parsed.failure.blocked[0].since_s, 0.125);
  EXPECT_TRUE(parsed.failure.blocked[0].timed_out);
  EXPECT_DOUBLE_EQ(parsed.failure.detected_s, 0.5);
}

TEST(BenchReport, AddPlatformDeduplicatesByName) {
  BenchReport report;
  report.add_platform({"toy", 2, 1e9, 2.5, 4.0, 8.0});
  report.add_platform({"toy", 4, 2e9, 5.0, 8.0, 16.0});
  ASSERT_EQ(report.platforms.size(), 1u);
  EXPECT_EQ(report.platforms[0].cores, 2u);
}

}  // namespace
}  // namespace mb::core
