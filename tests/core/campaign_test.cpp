#include "core/campaign.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "arch/platforms.h"
#include "core/harness.h"
#include "kernels/membench.h"
#include "support/rng.h"

namespace mb::core {
namespace {

namespace fs = std::filesystem;

TEST(Executor, RunsEveryIndexExactlyOnce) {
  for (const std::uint32_t jobs : {1u, 2u, 8u}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{100}}) {
      Executor ex(jobs);
      std::vector<std::atomic<int>> hits(n);
      ex.run(n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " n=" << n
                                     << " i=" << i;
      EXPECT_EQ(ex.tasks_run(), n);
    }
  }
}

TEST(Executor, ZeroJobsClampsToOne) {
  Executor ex(0);
  EXPECT_EQ(ex.jobs(), 1u);
  int count = 0;
  ex.run(3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Executor, PropagatesTaskException) {
  Executor ex(4);
  EXPECT_THROW(ex.run(50,
                      [](std::size_t i) {
                        if (i == 17) throw std::runtime_error("boom");
                      }),
               std::runtime_error);
}

TEST(Executor, SerialExecutorNeverSteals) {
  Executor ex(1);
  ex.run(10, [](std::size_t) {});
  EXPECT_EQ(ex.steals(), 0u);
}

// The tentpole guarantee: a parallel Harness run produces the exact same
// ResultSet (samples and interleaving orders) as the serial run, for any
// worker count, including with page randomization and a scheduler model.
TEST(Executor, HarnessRunIsByteIdenticalAcrossJobCounts) {
  auto factory = [](std::uint64_t seed) {
    return sim::Machine(arch::snowball(), sim::PagePolicy::kRandom,
                        support::Rng(seed));
  };
  kernels::MembenchParams mp;
  mp.array_bytes = 40 * 1024;
  mp.passes = 2;
  Workload membench = [mp](const Point&, sim::Machine& m) {
    return kernels::membench_run(m, mp).sim.seconds;
  };
  ParamSpace space;
  space.add("v", {0, 1, 2});

  auto run_with = [&](std::uint32_t jobs) {
    MeasurementPlan plan;
    plan.repetitions = 8;
    plan.seed = 2013;
    auto sched = std::make_unique<os::RealTimeAnomalous>(support::Rng(2013));
    Harness h(factory, std::move(sched), plan);
    Executor ex(jobs);
    return h.run(space, membench, ex);
  };

  const ResultSet serial = run_with(1);
  for (const std::uint32_t jobs : {2u, 8u}) {
    const ResultSet parallel = run_with(jobs);
    for (std::size_t v = 0; v < space.size(); ++v) {
      EXPECT_EQ(serial.samples(v), parallel.samples(v)) << "jobs=" << jobs;
      EXPECT_EQ(serial.orders(v), parallel.orders(v)) << "jobs=" << jobs;
    }
  }
}

/// Tasks whose value is a pure function of the index; counts executions.
std::vector<CampaignTask> counting_tasks(std::size_t n,
                                         std::atomic<int>& executed) {
  std::vector<CampaignTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    CampaignTask t;
    t.key = {"1.0.0", "test-suite", "snowball", "i=" + std::to_string(i),
             100 + i, 0};
    t.run = [i, &executed] {
      ++executed;
      return std::vector<double>{static_cast<double>(i), i * 0.5};
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

class RunCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            (std::string("mb-campaign-test-") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(RunCampaignTest, ColdRunMissesWarmRunHits) {
  std::atomic<int> executed{0};
  const auto tasks = counting_tasks(6, executed);
  CampaignOptions opts;
  opts.jobs = 3;
  opts.cache_dir = dir_;

  const CampaignResult cold = run_campaign(tasks, opts);
  EXPECT_EQ(cold.stats.tasks, 6u);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_misses, 6u);
  EXPECT_EQ(cold.stats.executed, 6u);
  EXPECT_EQ(executed.load(), 6);

  const CampaignResult warm = run_campaign(tasks, opts);
  EXPECT_EQ(warm.stats.cache_hits, 6u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_EQ(warm.stats.executed, 0u);
  EXPECT_EQ(executed.load(), 6) << "warm run must not re-execute";
  EXPECT_EQ(warm.samples, cold.samples);
}

TEST_F(RunCampaignTest, SamplesComeBackInTaskOrderForAnyJobCount) {
  std::atomic<int> executed{0};
  const auto tasks = counting_tasks(20, executed);
  CampaignOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.cache = false;
  const CampaignResult serial = run_campaign(tasks, serial_opts);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_EQ(serial.samples[i].size(), 2u);
    EXPECT_DOUBLE_EQ(serial.samples[i][0], static_cast<double>(i));
  }
  CampaignOptions parallel_opts = serial_opts;
  parallel_opts.jobs = 8;
  EXPECT_EQ(run_campaign(tasks, parallel_opts).samples, serial.samples);
}

TEST_F(RunCampaignTest, DisabledCacheAlwaysExecutes) {
  std::atomic<int> executed{0};
  const auto tasks = counting_tasks(4, executed);
  CampaignOptions opts;
  opts.cache = false;
  opts.cache_dir = dir_;
  run_campaign(tasks, opts);
  run_campaign(tasks, opts);
  EXPECT_EQ(executed.load(), 8);
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(RunCampaignTest, ThrowingTaskStillCommitsCompletedResults) {
  // Serial executor, failing task last: tasks 0..2 complete before the
  // throw, and their results must be committed to the cache so the re-run
  // only re-simulates what actually needs it.
  std::atomic<int> executed{0};
  bool fixed = false;
  auto tasks = counting_tasks(4, executed);
  tasks[3].run = [&executed, &fixed] {
    ++executed;
    if (!fixed) throw std::runtime_error("flaky point");
    return std::vector<double>{3.0, 1.5};
  };
  CampaignOptions opts;
  opts.jobs = 1;
  opts.cache_dir = dir_;

  EXPECT_THROW(run_campaign(tasks, opts), std::runtime_error);
  EXPECT_EQ(executed.load(), 4);

  fixed = true;
  const CampaignResult rerun = run_campaign(tasks, opts);
  EXPECT_EQ(rerun.stats.cache_hits, 3u) << "completed tasks were not committed";
  EXPECT_EQ(rerun.stats.cache_misses, 1u);
  EXPECT_EQ(executed.load(), 5) << "only the failing task may re-execute";
  EXPECT_EQ(rerun.samples[3], (std::vector<double>{3.0, 1.5}));
}

TEST_F(RunCampaignTest, ByteBudgetEvictsAfterTheRun) {
  std::atomic<int> executed{0};
  const auto tasks = counting_tasks(6, executed);
  CampaignOptions opts;
  opts.cache_dir = dir_;
  opts.cache_max_bytes = 1;  // nothing fits: every stored entry is evicted
  const CampaignResult result = run_campaign(tasks, opts);
  EXPECT_EQ(result.stats.cache_evictions, 6u);
  EXPECT_EQ(result.stats.cache_quarantined, 0u);
  // The next run misses everything again — the budget won.
  const CampaignResult rerun = run_campaign(tasks, opts);
  EXPECT_EQ(rerun.stats.cache_hits, 0u);
  EXPECT_EQ(rerun.stats.cache_misses, 6u);
}

TEST_F(RunCampaignTest, SummaryMentionsEverything) {
  CampaignStats stats;
  stats.tasks = 12;
  stats.cache_hits = 8;
  stats.cache_misses = 4;
  stats.steals = 3;
  CampaignOptions opts;
  opts.jobs = 4;
  EXPECT_EQ(campaign_summary(stats, opts),
            "campaign: 12 task(s), 8 cache hit(s), 4 miss(es), jobs 4, "
            "3 steal(s)");
  opts.cache = false;
  EXPECT_EQ(campaign_summary(stats, opts),
            "campaign: 12 task(s), 8 cache hit(s), 4 miss(es), jobs 4, "
            "3 steal(s) [cache disabled]");
  opts.cache = true;
  stats.cache_evictions = 2;
  stats.cache_quarantined = 1;
  EXPECT_EQ(campaign_summary(stats, opts),
            "campaign: 12 task(s), 8 cache hit(s), 4 miss(es), jobs 4, "
            "3 steal(s), 2 evicted, 1 quarantined");
}

}  // namespace
}  // namespace mb::core
