#include "core/compare.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::core {
namespace {

BenchRecord record(std::string name, std::vector<double> samples,
                   Direction direction = Direction::kMinimize) {
  BenchRecord r;
  r.name = std::move(name);
  r.platform = "toy";
  r.metric = direction == Direction::kMinimize ? "seconds" : "rate";
  r.unit = direction == Direction::kMinimize ? "s" : "ops/s";
  r.direction = direction;
  r.samples = std::move(samples);
  return r;
}

BenchReport report_with(std::vector<BenchRecord> records) {
  BenchReport report;
  report.suite = "unit";
  report.tool = "test";
  for (auto& r : records) report.records.push_back(std::move(r));
  return report;
}

const Comparison& entry(const CompareResult& result, std::string_view name) {
  for (const auto& e : result.entries)
    if (e.name == name) return e;
  support::fail("compare_test", "entry not found");
}

TEST(Compare, IdenticalReportsAreUnchanged) {
  const auto base =
      report_with({record("a", {1.0, 1.05, 0.95}),
                   record("b", {100.0, 103.0, 98.0}, Direction::kMaximize)});
  const auto result = compare_reports(base, base);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(result.improvements, 0u);
  EXPECT_EQ(result.unmatched, 0u);
  for (const auto& e : result.entries)
    EXPECT_EQ(e.verdict, Verdict::kUnchanged);
}

TEST(Compare, ClearRegressionTripsTheGate) {
  const auto base = report_with({record("a", {1.0, 1.02, 0.98, 1.01})});
  const auto cand = report_with({record("a", {1.5, 1.52, 1.48, 1.51})});
  const auto result = compare_reports(base, cand);
  EXPECT_TRUE(result.has_regressions());
  const auto& e = entry(result, "a");
  EXPECT_EQ(e.verdict, Verdict::kRegressed);
  EXPECT_NEAR(e.rel_delta, 0.5, 0.05);
  EXPECT_GT(e.sigma_delta, 3.0);
}

TEST(Compare, RegressionOfAMaximizeMetricIsADrop) {
  const auto base = report_with(
      {record("bw", {10.0, 10.1, 9.9}, Direction::kMaximize)});
  const auto slower = report_with(
      {record("bw", {7.0, 7.05, 6.95}, Direction::kMaximize)});
  const auto faster = report_with(
      {record("bw", {13.0, 13.1, 12.9}, Direction::kMaximize)});
  EXPECT_TRUE(compare_reports(base, slower).has_regressions());
  const auto improved = compare_reports(base, faster);
  EXPECT_FALSE(improved.has_regressions());
  EXPECT_EQ(improved.improvements, 1u);
}

TEST(Compare, WithinNoiseDeltaIsUnchanged) {
  // ~5% sample spread; a 2% shift must not alarm.
  const auto base =
      report_with({record("a", {1.00, 1.05, 0.95, 1.04, 0.96, 1.02})});
  const auto cand =
      report_with({record("a", {1.02, 1.07, 0.97, 1.06, 0.98, 1.04})});
  const auto result = compare_reports(base, cand);
  EXPECT_FALSE(result.has_regressions());
  EXPECT_EQ(entry(result, "a").verdict, Verdict::kUnchanged);
}

TEST(Compare, SmallButStatisticallySignificantDeltaIsGuarded) {
  // Tiny variance makes a 1% shift many sigmas, but it is below the
  // minimum relative delta and must not alarm.
  const auto base = report_with({record("a", {1.0, 1.0001, 0.9999})});
  const auto cand = report_with({record("a", {1.01, 1.0101, 1.0099})});
  const auto result = compare_reports(base, cand);
  EXPECT_FALSE(result.has_regressions());
}

TEST(Compare, ZeroVarianceRegressionStillDetected) {
  // Fully deterministic single-sample records (e.g. simulated runs).
  const auto base = report_with({record("a", {1.0})});
  const auto cand = report_with({record("a", {1.5})});
  const auto result = compare_reports(base, cand);
  EXPECT_TRUE(result.has_regressions());
}

// The paper's Fig. 5 case: the baseline itself is bimodal (fast mode ~1.0,
// degraded mode ~5.0). A candidate landing inside either known mode is not
// a regression — a mean-based gate would false-alarm here.
TEST(Compare, BimodalBaselineDoesNotFalseAlarm) {
  std::vector<double> bimodal;
  for (int i = 0; i < 20; ++i) bimodal.push_back(1.0 + 0.01 * (i % 5));
  for (int i = 0; i < 4; ++i) bimodal.push_back(5.0 + 0.01 * i);
  const auto base = report_with({record("fig5", bimodal)});

  // Candidate entirely in the fast mode: unchanged (its median ~1.0 is far
  // from the bimodal mean ~1.68 — a mean-based gate would flag it).
  const auto fast = report_with(
      {record("fig5", {1.0, 1.01, 1.02, 1.0, 1.03, 1.01})});
  auto result = compare_reports(base, fast);
  EXPECT_FALSE(result.has_regressions());
  EXPECT_TRUE(entry(result, "fig5").baseline_bimodal);

  // Candidate stuck in the degraded mode the baseline already exhibited:
  // still not a *new* regression.
  const auto degraded = report_with(
      {record("fig5", {5.0, 5.01, 5.02, 4.99, 5.0, 5.01})});
  result = compare_reports(base, degraded);
  EXPECT_FALSE(result.has_regressions());

  // Candidate clearly beyond the worst known mode: regression.
  const auto beyond = report_with(
      {record("fig5", {8.0, 8.05, 7.95, 8.02, 8.0, 7.98})});
  result = compare_reports(base, beyond);
  EXPECT_TRUE(result.has_regressions());
}

TEST(Compare, ImprovementBeyondNoiseIsReported) {
  const auto base = report_with({record("a", {1.0, 1.02, 0.98})});
  const auto cand = report_with({record("a", {0.5, 0.51, 0.49})});
  const auto result = compare_reports(base, cand);
  EXPECT_FALSE(result.has_regressions());
  EXPECT_EQ(result.improvements, 1u);
  EXPECT_EQ(entry(result, "a").verdict, Verdict::kImproved);
}

TEST(Compare, UnmatchedRecordsAreReportedNotGated) {
  const auto base = report_with({record("gone", {1.0}),
                                 record("both", {1.0})});
  const auto cand = report_with({record("both", {1.0}),
                                 record("new", {2.0})});
  const auto result = compare_reports(base, cand);
  EXPECT_FALSE(result.has_regressions());
  EXPECT_EQ(result.unmatched, 2u);
  EXPECT_EQ(entry(result, "gone").verdict, Verdict::kBaselineOnly);
  EXPECT_EQ(entry(result, "new").verdict, Verdict::kCandidateOnly);
  EXPECT_EQ(entry(result, "both").verdict, Verdict::kUnchanged);
}

TEST(Compare, SeedsAreStampedAndDifferenceDetected) {
  auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.5})});
  base.seed = 2013;
  cand.seed = 2013;
  auto result = compare_reports(base, cand);
  EXPECT_EQ(result.baseline_seed, 2013u);
  EXPECT_EQ(result.candidate_seed, 2013u);
  EXPECT_FALSE(result.seeds_differ());

  cand.seed = 99;
  result = compare_reports(base, cand);
  EXPECT_EQ(result.candidate_seed, 99u);
  EXPECT_TRUE(result.seeds_differ());
}

TEST(Compare, MetricOrDirectionMismatchThrows) {
  const auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.0})});
  cand.records[0].direction = Direction::kMaximize;
  cand.records[0].metric = "rate";
  EXPECT_THROW(compare_reports(base, cand), support::Error);
}

obs::MetricSample scalar(std::string name, obs::Labels labels, double value) {
  obs::MetricSample m;
  m.name = std::move(name);
  m.labels = std::move(labels);
  m.value = value;
  return m;
}

TEST(Compare, AttributeMetricsRanksBiggestMovers) {
  auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.0})});
  base.metrics = {scalar("mpi.time_s", {{"kind", "collective"}}, 10.0),
                  scalar("mpi.time_s", {{"kind", "p2p"}}, 5.0),
                  scalar("tuner.evaluations", {}, 100.0)};
  cand.metrics = {scalar("mpi.time_s", {{"kind", "collective"}}, 25.0),
                  scalar("mpi.time_s", {{"kind", "p2p"}}, 5.001),
                  scalar("tuner.evaluations", {}, 110.0)};

  const auto movers = attribute_metrics(base, cand);
  // p2p moved 0.02% — below the default 1% floor; the collective phase
  // (+150%) outranks the evaluation count (+10%).
  ASSERT_EQ(movers.size(), 2u);
  EXPECT_EQ(movers[0].key, "mpi.time_s{kind=collective}");
  EXPECT_DOUBLE_EQ(movers[0].rel_delta, 1.5);
  EXPECT_EQ(movers[1].key, "tuner.evaluations");
}

TEST(Compare, AttributeMetricsEmptyWithoutBothSnapshots) {
  auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.0})});
  base.metrics = {scalar("x", {}, 1.0)};
  EXPECT_TRUE(attribute_metrics(base, cand).empty());
  EXPECT_TRUE(attribute_metrics(cand, base).empty());
}

TEST(Compare, AttributeMetricsHandlesAppearFromZero) {
  auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.0})});
  base.metrics = {scalar("drops", {}, 0.0)};
  cand.metrics = {scalar("drops", {}, 42.0)};
  const auto movers = attribute_metrics(base, cand);
  ASSERT_EQ(movers.size(), 1u);
  EXPECT_DOUBLE_EQ(movers[0].rel_delta, 1.0);  // "appeared", sign only
}

TEST(Compare, AttributeMetricsKeepsOneSidedSeries) {
  // A series present in only one snapshot is evidence too: a phase that
  // vanished or appeared. Zero-valued one-sided series stay silent.
  auto base = report_with({record("a", {1.0})});
  auto cand = report_with({record("a", {1.0})});
  base.metrics = {scalar("retries", {}, 7.0), scalar("idle", {}, 0.0)};
  cand.metrics = {scalar("drops", {}, 3.0), scalar("spares", {}, 0.0)};
  const auto movers = attribute_metrics(base, cand);
  ASSERT_EQ(movers.size(), 2u);
  const MetricDelta* vanished = nullptr;
  const MetricDelta* appeared = nullptr;
  for (const MetricDelta& d : movers) {
    if (d.presence == MetricDelta::Presence::kBaselineOnly) vanished = &d;
    if (d.presence == MetricDelta::Presence::kCandidateOnly) appeared = &d;
  }
  ASSERT_NE(vanished, nullptr);
  EXPECT_NE(vanished->key.find("retries"), std::string::npos);
  EXPECT_DOUBLE_EQ(vanished->rel_delta, -1.0);
  EXPECT_DOUBLE_EQ(vanished->baseline, 7.0);
  ASSERT_NE(appeared, nullptr);
  EXPECT_NE(appeared->key.find("drops"), std::string::npos);
  EXPECT_DOUBLE_EQ(appeared->rel_delta, 1.0);
  EXPECT_DOUBLE_EQ(appeared->candidate, 3.0);
}

TEST(Compare, ThresholdSigmaIsTunable) {
  // Delta of ~4 pooled sigma: default threshold (3) fires, a stricter
  // threshold of 6 does not.
  const auto base =
      report_with({record("a", {1.00, 1.02, 0.98, 1.01, 0.99})});
  const auto cand =
      report_with({record("a", {1.06, 1.08, 1.04, 1.07, 1.05})});
  EXPECT_TRUE(compare_reports(base, cand).has_regressions());
  CompareOptions strict;
  strict.threshold_sigma = 6.0;
  EXPECT_FALSE(compare_reports(base, cand, strict).has_regressions());
}

}  // namespace
}  // namespace mb::core
