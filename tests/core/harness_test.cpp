#include "core/harness.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "kernels/membench.h"
#include "support/check.h"

namespace mb::core {
namespace {

MachineFactory snowball_factory(sim::PagePolicy policy) {
  return [policy](std::uint64_t seed) {
    return sim::Machine(arch::snowball(), policy, support::Rng(seed));
  };
}

/// Constant-cost workload whose value identifies the variant.
Workload variant_id_workload() {
  return [](const Point& p, sim::Machine&) {
    return static_cast<double>(p.get("v"));
  };
}

TEST(Harness, MeasuresEveryVariantRepetitionPair) {
  MeasurementPlan plan;
  plan.repetitions = 5;
  Harness h(snowball_factory(sim::PagePolicy::kConsecutive), nullptr, plan);
  ParamSpace space;
  space.add("v", {1, 2, 3});
  const ResultSet r = h.run(space, variant_id_workload());
  EXPECT_EQ(r.total_samples(), 15u);
  for (std::size_t v = 0; v < 3; ++v)
    EXPECT_EQ(r.samples(v).size(), 5u);
}

TEST(Harness, NoSchedulerMeansCleanValues) {
  MeasurementPlan plan;
  plan.repetitions = 4;
  Harness h(snowball_factory(sim::PagePolicy::kConsecutive), nullptr, plan);
  ParamSpace space;
  space.add("v", {7});
  const ResultSet r = h.run(space, variant_id_workload());
  for (double x : r.samples(0)) EXPECT_DOUBLE_EQ(x, 7.0);
}

TEST(Harness, SchedulerSlowdownApplied) {
  MeasurementPlan plan;
  plan.repetitions = 4;
  auto sched = std::make_unique<os::FairScheduler>(support::Rng(1), 0.05);
  Harness h(snowball_factory(sim::PagePolicy::kConsecutive),
            std::move(sched), plan);
  ParamSpace space;
  space.add("v", {10});
  const ResultSet r = h.run(space, variant_id_workload());
  for (double x : r.samples(0)) EXPECT_GT(x, 10.0);
}

TEST(Harness, RandomizedOrderInterleavesVariants) {
  MeasurementPlan plan;
  plan.repetitions = 8;
  plan.randomize_order = true;
  plan.seed = 9;
  Harness h(snowball_factory(sim::PagePolicy::kConsecutive), nullptr, plan);
  ParamSpace space;
  space.add("v", {0, 1});
  const ResultSet r = h.run(space, variant_id_workload());
  // Variant 0 must not occupy the first 8 global slots (that would be
  // sequential, not randomized). Overwhelmingly unlikely under shuffle.
  const auto& ords = r.orders(0);
  bool interleaved = false;
  for (const std::size_t o : ords)
    if (o >= 8) interleaved = true;
  EXPECT_TRUE(interleaved);
}

TEST(Harness, SequentialOrderWhenDisabled) {
  MeasurementPlan plan;
  plan.repetitions = 3;
  plan.randomize_order = false;
  Harness h(snowball_factory(sim::PagePolicy::kConsecutive), nullptr, plan);
  ParamSpace space;
  space.add("v", {0, 1});
  const ResultSet r = h.run(space, variant_id_workload());
  // Schedule is rep-major: orders of v0 are 0,2,4 and v1 are 1,3,5.
  EXPECT_EQ(r.orders(0), (std::vector<std::size_t>{0, 2, 4}));
}

TEST(Harness, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    MeasurementPlan plan;
    plan.repetitions = 6;
    plan.seed = seed;
    auto sched =
        std::make_unique<os::RealTimeAnomalous>(support::Rng(seed));
    Harness h(snowball_factory(sim::PagePolicy::kRandom), std::move(sched),
              plan);
    ParamSpace space;
    space.add("v", {1, 2});
    const ResultSet r = h.run(space, variant_id_workload());
    return r.samples(0);
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Harness, FreshMachinePerRepChangesPagePlacement) {
  // With randomized pages and a fresh machine per repetition, a cache-
  // sensitive workload (membench near the L1 size) shows between-rep
  // variability; with one shared machine and reuse-biased pages it is
  // stable — the paper's Sec. V-A.1 reproducibility observation.
  kernels::MembenchParams mp;
  mp.array_bytes = 40 * 1024;  // just above the 32 KB L1
  mp.passes = 4;
  Workload membench = [mp](const Point&, sim::Machine& m) {
    return kernels::membench_run(m, mp).sim.seconds;
  };
  ParamSpace space;
  space.add("v", {0});

  MeasurementPlan fresh_plan;
  fresh_plan.repetitions = 10;
  fresh_plan.fresh_machine_per_rep = true;
  fresh_plan.seed = 3;
  Harness fresh(snowball_factory(sim::PagePolicy::kRandom), nullptr,
                fresh_plan);
  const auto fresh_samples = fresh.run(space, membench).samples(0);

  MeasurementPlan shared_plan = fresh_plan;
  shared_plan.fresh_machine_per_rep = false;
  Harness shared(snowball_factory(sim::PagePolicy::kReuseBiased), nullptr,
                 shared_plan);
  const auto shared_samples = shared.run(space, membench).samples(0);

  EXPECT_GT(stats::cv(fresh_samples), 4.0 * stats::cv(shared_samples));
}

TEST(Harness, Preconditions) {
  MeasurementPlan plan;
  plan.repetitions = 0;
  EXPECT_THROW(
      Harness(snowball_factory(sim::PagePolicy::kRandom), nullptr, plan),
      support::Error);
  EXPECT_THROW(Harness(nullptr, nullptr, MeasurementPlan{}), support::Error);

  Harness ok(snowball_factory(sim::PagePolicy::kRandom), nullptr,
             MeasurementPlan{});
  ParamSpace empty;
  EXPECT_THROW(ok.run(empty, variant_id_workload()), support::Error);
}

}  // namespace
}  // namespace mb::core
