#include "core/param_space.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::core {
namespace {

TEST(ParamSpace, SizeIsProduct) {
  ParamSpace s;
  s.add("a", {1, 2, 3}).add("b", {10, 20});
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.dims(), 2u);
}

TEST(ParamSpace, AddRangeInclusive) {
  ParamSpace s;
  s.add_range("unroll", 1, 12);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s.values(0).front(), 1);
  EXPECT_EQ(s.values(0).back(), 12);
}

TEST(ParamSpace, AddRangeWithStep) {
  ParamSpace s;
  s.add_range("bits", 32, 128, 32);
  EXPECT_EQ(s.size(), 4u);  // 32, 64, 96, 128
}

TEST(ParamSpace, RowMajorEnumeration) {
  ParamSpace s;
  s.add("a", {1, 2}).add("b", {10, 20, 30});
  EXPECT_EQ(s.at(0).get("a"), 1);
  EXPECT_EQ(s.at(0).get("b"), 10);
  EXPECT_EQ(s.at(1).get("b"), 20);  // last dimension fastest
  EXPECT_EQ(s.at(3).get("a"), 2);
  EXPECT_EQ(s.at(5).get("b"), 30);
}

TEST(ParamSpace, CoordsRoundTrip) {
  ParamSpace s;
  s.add("a", {1, 2, 3}).add("b", {4, 5}).add("c", {6, 7, 8, 9});
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(s.index_of(s.coords(i)), i);
}

TEST(ParamSpace, DuplicateDimensionRejected) {
  ParamSpace s;
  s.add("x", {1});
  EXPECT_THROW(s.add("x", {2}), support::Error);
}

TEST(ParamSpace, EmptyValuesRejected) {
  ParamSpace s;
  EXPECT_THROW(s.add("x", {}), support::Error);
}

TEST(ParamSpace, OutOfRangeIndexRejected) {
  ParamSpace s;
  s.add("x", {1, 2});
  EXPECT_THROW(s.at(2), support::Error);
}

TEST(Point, ToStringIsReadable) {
  ParamSpace s;
  s.add("unroll", {4}).add("elem_bits", {64});
  EXPECT_EQ(s.at(0).to_string(), "unroll=4 elem_bits=64");
}

TEST(Point, UnknownNameThrows) {
  ParamSpace s;
  s.add("x", {1});
  EXPECT_THROW(s.at(0).get("y"), support::Error);
}

}  // namespace
}  // namespace mb::core
