#include "core/result_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <vector>

namespace mb::core {
namespace {

namespace fs = std::filesystem;

CacheKey sample_key() {
  CacheKey key;
  key.tool_version = "1.2.3";
  key.suite = "membench";
  key.platform = "snowball";
  key.point = "size_kb=48";
  key.seed = 42;
  key.fault_plan_hash = 7;
  return key;
}

/// Creates a fresh cache directory and removes it on teardown.
class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            (std::string("mb-cache-test-") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ResultCacheTest, KeyDigestIsStableAcrossProcesses) {
  // Golden value: computed independently from the FNV-1a spec. If this
  // changes, on-disk caches from older builds silently stop matching —
  // that must only ever happen through a deliberate schema/version bump.
  EXPECT_EQ(sample_key().hash(), 0xc158bec60c0e3ca0ULL);
  EXPECT_EQ(sample_key().digest(), "c158bec60c0e3ca0");
}

TEST_F(ResultCacheTest, EveryKeyFieldAffectsTheDigest) {
  const CacheKey base = sample_key();
  CacheKey k = base;
  k.tool_version = "1.2.4";
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.suite = "latency";
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.platform = "tegra2";
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.point = "size_kb=64";
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.seed = 43;
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.fault_plan_hash = 8;
  EXPECT_NE(k.hash(), base.hash());
}

TEST_F(ResultCacheTest, DisabledCacheMissesAndDropsWrites) {
  const ResultCache cache;  // default = disabled
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.store(sample_key(), {1.0, 2.0}));
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());

  const ResultCache off(dir_, false);
  EXPECT_FALSE(off.store(sample_key(), {1.0}));
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(ResultCacheTest, RoundTripsSamplesExactly) {
  const ResultCache cache(dir_, true);
  const std::vector<double> samples = {1.5, -0.25, 3.0e9, 0.0,
                                       1.0000000000000002};
  ASSERT_TRUE(cache.store(sample_key(), samples));
  const auto hit = cache.lookup(sample_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, samples);  // bit-exact, not approximate
}

TEST_F(ResultCacheTest, SecondProcessSeesTheEntry) {
  // A second ResultCache instance over the same directory models a fresh
  // process: nothing is shared in memory.
  {
    const ResultCache writer(dir_, true);
    ASSERT_TRUE(writer.store(sample_key(), {4.0, 5.0}));
  }
  const ResultCache reader(dir_, true);
  const auto hit = reader.lookup(sample_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{4.0, 5.0}));
}

TEST_F(ResultCacheTest, ToolVersionBumpInvalidates) {
  const ResultCache cache(dir_, true);
  ASSERT_TRUE(cache.store(sample_key(), {1.0}));
  CacheKey bumped = sample_key();
  bumped.tool_version = "9.9.9";
  EXPECT_FALSE(cache.lookup(bumped).has_value());
  // The old entry is untouched — only never looked up again.
  EXPECT_TRUE(cache.lookup(sample_key()).has_value());
}

TEST_F(ResultCacheTest, CorruptEntryReadsAsMiss) {
  const ResultCache cache(dir_, true);
  ASSERT_TRUE(cache.store(sample_key(), {1.0}));
  const fs::path path = fs::path(dir_) / sample_key().digest().substr(0, 2) /
                        (sample_key().digest() + ".json");
  ASSERT_TRUE(fs::exists(path));
  std::ofstream(path) << "{ not json";
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
}

TEST_F(ResultCacheTest, KeyEchoMismatchReadsAsMiss) {
  // Simulate a digest collision: an entry whose file name matches but
  // whose embedded key does not. The key echo must guard against it.
  const ResultCache cache(dir_, true);
  CacheKey other = sample_key();
  other.seed = 1000;
  ASSERT_TRUE(cache.store(other, {1.0}));
  const fs::path stored = fs::path(dir_) / other.digest().substr(0, 2) /
                          (other.digest() + ".json");
  const fs::path target = fs::path(dir_) / sample_key().digest().substr(0, 2) /
                          (sample_key().digest() + ".json");
  fs::create_directories(target.parent_path());
  fs::rename(stored, target);
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
}

TEST_F(ResultCacheTest, MissWhenDirectoryAbsent) {
  const ResultCache cache(dir_, true);
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
}

TEST_F(ResultCacheTest, CorruptEntryIsQuarantinedNotDeleted) {
  const ResultCache cache(dir_, true);
  ASSERT_TRUE(cache.store(sample_key(), {1.0}));
  const fs::path path = fs::path(dir_) / sample_key().digest().substr(0, 2) /
                        (sample_key().digest() + ".json");
  std::ofstream(path) << "{ truncated garbage";

  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
  // The evidence is moved aside, not destroyed.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(fs::path(path.string() + ".quarantined")));
  // The next lookup is an honest miss: nothing left to re-parse or
  // re-quarantine.
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
}

TEST_F(ResultCacheTest, KeyEchoMismatchIsNotQuarantined) {
  // A digest collision is a well-formed entry for a *different* key; it
  // must stay a plain miss with the file left untouched.
  const ResultCache cache(dir_, true);
  CacheKey other = sample_key();
  other.seed = 1000;
  ASSERT_TRUE(cache.store(other, {1.0}));
  const fs::path stored = fs::path(dir_) / other.digest().substr(0, 2) /
                          (other.digest() + ".json");
  const fs::path target = fs::path(dir_) / sample_key().digest().substr(0, 2) /
                          (sample_key().digest() + ".json");
  fs::create_directories(target.parent_path());
  fs::rename(stored, target);
  EXPECT_FALSE(cache.lookup(sample_key()).has_value());
  EXPECT_EQ(cache.quarantined(), 0u);
  EXPECT_TRUE(fs::exists(target));
}

TEST_F(ResultCacheTest, EvictsOldestEntriesFirstUnderByteBudget) {
  std::vector<CacheKey> keys;
  std::vector<fs::path> paths;
  {
    const ResultCache writer(dir_, true);
    for (std::uint64_t i = 0; i < 3; ++i) {
      CacheKey k = sample_key();
      k.seed = i;
      ASSERT_TRUE(writer.store(k, {static_cast<double>(i)}));
      const fs::path p = fs::path(dir_) / k.digest().substr(0, 2) /
                         (k.digest() + ".json");
      // Pin distinct mtimes so "oldest" is unambiguous even on coarse
      // filesystem clocks: key 0 oldest, key 2 newest.
      fs::last_write_time(
          p, fs::file_time_type::clock::now() - std::chrono::hours(3 - i));
      keys.push_back(k);
      paths.push_back(p);
    }
  }
  // Budget fits exactly one entry: the two oldest must go.
  const ResultCache cache(dir_, true, fs::file_size(paths[2]));
  EXPECT_EQ(cache.evict(), 2u);
  EXPECT_FALSE(fs::exists(paths[0]));
  EXPECT_FALSE(fs::exists(paths[1]));
  EXPECT_TRUE(fs::exists(paths[2]));
  EXPECT_TRUE(cache.lookup(keys[2]).has_value());
  // Already under budget: idempotent.
  EXPECT_EQ(cache.evict(), 0u);
}

TEST_F(ResultCacheTest, EvictionIgnoresQuarantinedFiles) {
  const ResultCache writer(dir_, true);
  ASSERT_TRUE(writer.store(sample_key(), {1.0}));
  const fs::path path = fs::path(dir_) / sample_key().digest().substr(0, 2) /
                        (sample_key().digest() + ".json");
  std::ofstream(path) << "broken";
  EXPECT_FALSE(writer.lookup(sample_key()).has_value());
  const fs::path quarantined(path.string() + ".quarantined");
  ASSERT_TRUE(fs::exists(quarantined));

  // A 1-byte budget evicts every live entry but never the quarantined one.
  const ResultCache bounded(dir_, true, 1);
  EXPECT_EQ(bounded.evict(), 0u);  // nothing live to count or remove
  EXPECT_TRUE(fs::exists(quarantined));
}

TEST_F(ResultCacheTest, UnboundedCacheNeverEvicts) {
  const ResultCache cache(dir_, true);  // max_bytes defaults to 0
  EXPECT_EQ(cache.max_bytes(), 0u);
  ASSERT_TRUE(cache.store(sample_key(), {1.0}));
  EXPECT_EQ(cache.evict(), 0u);
  EXPECT_TRUE(cache.lookup(sample_key()).has_value());
}

}  // namespace
}  // namespace mb::core
