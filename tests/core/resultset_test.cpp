#include "core/resultset.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace mb::core {
namespace {

TEST(ResultSet, StoresSamplesPerVariant) {
  ResultSet r(3);
  r.add(0, 1.0, 0);
  r.add(1, 2.0, 1);
  r.add(0, 1.5, 2);
  EXPECT_EQ(r.samples(0).size(), 2u);
  EXPECT_EQ(r.samples(1).size(), 1u);
  EXPECT_EQ(r.total_samples(), 3u);
  EXPECT_DOUBLE_EQ(r.mean(0), 1.25);
}

TEST(ResultSet, BestMinimize) {
  ResultSet r(3);
  r.add(0, 5.0, 0);
  r.add(1, 2.0, 1);
  r.add(2, 9.0, 2);
  EXPECT_EQ(r.best(Direction::kMinimize), 1u);
  EXPECT_EQ(r.best(Direction::kMaximize), 2u);
}

TEST(ResultSet, BestSkipsEmptyVariants) {
  ResultSet r(3);
  r.add(2, 1.0, 0);
  EXPECT_EQ(r.best(Direction::kMinimize), 2u);
}

TEST(ResultSet, BestWithNoSamplesThrows) {
  ResultSet r(2);
  EXPECT_THROW(r.best(Direction::kMinimize), support::Error);
}

TEST(ResultSet, SummaryMatchesStats) {
  ResultSet r(1);
  for (int i = 1; i <= 5; ++i) r.add(0, i, static_cast<std::size_t>(i));
  const auto s = r.summary(0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(ResultSet, DetectsBimodalVariant) {
  support::Rng rng(1);
  ResultSet r(1);
  std::size_t order = 0;
  for (int i = 0; i < 100; ++i) r.add(0, rng.normal(1.0, 0.02), order++);
  for (int i = 0; i < 30; ++i) r.add(0, rng.normal(5.0, 0.05), order++);
  const auto split = r.modes(0);
  EXPECT_TRUE(split.bimodal);
}

TEST(ResultSet, TemporalDegradedModeDetected) {
  // Degraded (slow) samples appear in one consecutive burst.
  support::Rng rng(2);
  ResultSet r(1);
  std::size_t order = 0;
  for (int i = 0; i < 60; ++i) r.add(0, rng.normal(1.0, 0.02), order++);
  for (int i = 0; i < 25; ++i) r.add(0, rng.normal(5.0, 0.05), order++);
  for (int i = 0; i < 60; ++i) r.add(0, rng.normal(1.0, 0.02), order++);
  EXPECT_TRUE(r.degraded_mode_is_temporal(0));
}

TEST(ResultSet, ScatteredDegradedModeNotTemporal) {
  support::Rng rng(3);
  ResultSet r(1);
  for (int i = 0; i < 145; ++i) {
    const bool slow = i % 6 == 0;  // evenly scattered
    r.add(0, slow ? rng.normal(5.0, 0.05) : rng.normal(1.0, 0.02),
          static_cast<std::size_t>(i));
  }
  EXPECT_FALSE(r.degraded_mode_is_temporal(0));
}

TEST(ResultSet, UnimodalNotTemporal) {
  support::Rng rng(4);
  ResultSet r(1);
  for (int i = 0; i < 100; ++i)
    r.add(0, rng.normal(1.0, 0.05), static_cast<std::size_t>(i));
  EXPECT_FALSE(r.degraded_mode_is_temporal(0));
}

TEST(ResultSet, VariantBoundsChecked) {
  ResultSet r(2);
  EXPECT_THROW(r.add(2, 1.0, 0), support::Error);
  EXPECT_THROW(r.samples(5), support::Error);
}

}  // namespace
}  // namespace mb::core
