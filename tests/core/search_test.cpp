#include "core/search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"

namespace mb::core {
namespace {

ParamSpace unroll_space() {
  ParamSpace s;
  s.add_range("unroll", 1, 12);
  return s;
}

// Convex cycle curve with minimum at unroll = 5.
double convex(const Point& p) {
  const double u = static_cast<double>(p.get("unroll"));
  return 10.0 + (u - 5.0) * (u - 5.0);
}

TEST(ExhaustiveSearch, FindsGlobalMinimum) {
  const auto s = unroll_space();
  const auto out = exhaustive_search(s, convex, Direction::kMinimize);
  EXPECT_EQ(s.at(out.best_index).get("unroll"), 5);
  EXPECT_DOUBLE_EQ(out.best_value, 10.0);
  EXPECT_EQ(out.evaluations, 12u);
}

TEST(ExhaustiveSearch, MaximizeDirection) {
  const auto s = unroll_space();
  const auto out = exhaustive_search(s, convex, Direction::kMaximize);
  // Farthest from 5 is unroll=12.
  EXPECT_EQ(s.at(out.best_index).get("unroll"), 12);
}

TEST(RandomSearch, FullBudgetEqualsExhaustive) {
  const auto s = unroll_space();
  const auto out = random_search(s, convex, Direction::kMinimize, 100,
                                 support::Rng(3));
  EXPECT_EQ(out.evaluations, 12u);
  EXPECT_DOUBLE_EQ(out.best_value, 10.0);
}

TEST(RandomSearch, BudgetLimitsEvaluations) {
  const auto s = unroll_space();
  const auto out = random_search(s, convex, Direction::kMinimize, 4,
                                 support::Rng(3));
  EXPECT_EQ(out.evaluations, 4u);
}

TEST(RandomSearch, NoDuplicateEvaluations) {
  const auto s = unroll_space();
  const auto out = random_search(s, convex, Direction::kMinimize, 12,
                                 support::Rng(5));
  std::set<std::size_t> seen;
  for (const auto& [idx, v] : out.visited) seen.insert(idx);
  EXPECT_EQ(seen.size(), 12u);
}

TEST(HillClimb, ConvergesOnConvexCurve) {
  const auto s = unroll_space();
  const auto out = hill_climb(s, convex, Direction::kMinimize);
  EXPECT_EQ(s.at(out.best_index).get("unroll"), 5);
  // Far fewer evaluations than exhaustive on a convex curve would allow.
  EXPECT_LE(out.evaluations, 12u);
}

TEST(HillClimb, TrapsInLocalOptimum) {
  // Bimodal curve: local minimum at 2, global at 10. Starting at index 0
  // the climber stops at the local one — why the paper insists on
  // systematic exploration for narrow embedded sweet spots.
  ParamSpace s;
  s.add_range("x", 1, 12);
  auto bimodal = [](const Point& p) {
    const double x = static_cast<double>(p.get("x"));
    return std::min((x - 2) * (x - 2) + 5.0, (x - 10) * (x - 10) + 1.0);
  };
  const auto out = hill_climb(s, bimodal, Direction::kMinimize);
  EXPECT_EQ(s.at(out.best_index).get("x"), 2);
  EXPECT_GT(out.best_value, 1.0);  // missed the global optimum
  const auto full = exhaustive_search(s, bimodal, Direction::kMinimize);
  EXPECT_EQ(s.at(full.best_index).get("x"), 10);
}

TEST(HillClimb, MultiDimensional) {
  ParamSpace s;
  s.add_range("a", 0, 8).add_range("b", 0, 8);
  auto bowl = [](const Point& p) {
    const double a = static_cast<double>(p.get("a")) - 6;
    const double b = static_cast<double>(p.get("b")) - 3;
    return a * a + b * b;
  };
  const auto out = hill_climb(s, bowl, Direction::kMinimize);
  EXPECT_EQ(s.at(out.best_index).get("a"), 6);
  EXPECT_EQ(s.at(out.best_index).get("b"), 3);
}

TEST(HillClimb, BudgetRespected) {
  ParamSpace s;
  s.add_range("a", 0, 100);
  auto linear = [](const Point& p) {
    return -static_cast<double>(p.get("a"));
  };
  const auto out = hill_climb(s, linear, Direction::kMinimize, {}, 10);
  EXPECT_LE(out.evaluations, 10u);
}

TEST(SweetSpot, ExtractsRangeAroundOptimum) {
  ParamSpace s;
  s.add_range("unroll", 1, 12);
  // Metric: min 10 at u=5..7, within 10% up to 11 for u=4..8.
  std::vector<double> metric;
  for (int u = 1; u <= 12; ++u) {
    if (u >= 5 && u <= 7)
      metric.push_back(10.0);
    else if (u == 4 || u == 8)
      metric.push_back(10.8);
    else
      metric.push_back(14.0);
  }
  const auto spot = sweet_spot(s, metric, Direction::kMinimize, 0.10);
  EXPECT_EQ(spot.lo, 4);
  EXPECT_EQ(spot.hi, 8);
  EXPECT_EQ(spot.width, 5u);
}

TEST(SweetSpot, MaximizeDirection) {
  ParamSpace s;
  s.add_range("x", 1, 5);
  std::vector<double> metric{1.0, 9.5, 10.0, 9.0, 2.0};
  const auto spot = sweet_spot(s, metric, Direction::kMaximize, 0.10);
  EXPECT_EQ(spot.lo, 2);
  EXPECT_EQ(spot.hi, 4);
}

TEST(SweetSpot, RequiresOneDimension) {
  ParamSpace s;
  s.add("a", {1}).add("b", {2});
  EXPECT_THROW(sweet_spot(s, {1.0}, Direction::kMinimize), support::Error);
}

TEST(SweetSpot, MetricSizeChecked) {
  ParamSpace s;
  s.add_range("x", 1, 5);
  EXPECT_THROW(sweet_spot(s, {1.0, 2.0}, Direction::kMinimize),
               support::Error);
}

}  // namespace
}  // namespace mb::core
