#include "core/tuner.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "kernels/magicfilter.h"
#include "kernels/membench.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace mb::core {
namespace {

MachineFactory factory(const arch::Platform& p) {
  return [p](std::uint64_t seed) {
    return sim::Machine(p, sim::PagePolicy::kConsecutive,
                        support::Rng(seed));
  };
}

MeasurementPlan quick_plan() {
  MeasurementPlan plan;
  plan.repetitions = 2;
  plan.fresh_machine_per_rep = false;
  return plan;
}

/// Magicfilter cycles-per-output as a tunable workload over unroll.
Workload magicfilter_workload(std::uint32_t n = 16) {
  return [n](const Point& p, sim::Machine& m) {
    kernels::MagicfilterParams mp;
    mp.n = n;
    mp.dims = 1;
    mp.unroll = static_cast<std::uint32_t>(p.get("unroll"));
    return kernels::magicfilter_run(m, mp).cycles_per_output;
  };
}

TEST(Tuner, ExhaustiveFindsMagicfilterOptimumOnTegra2) {
  Tuner tuner(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  ParamSpace space;
  space.add_range("unroll", 1, 12);
  const auto report = tuner.tune(space, magicfilter_workload());
  // Fig. 7b: the Tegra2 optimum sits in the [4, 7] band.
  EXPECT_GE(report.best.get("unroll"), 4);
  EXPECT_LE(report.best.get("unroll"), 7);
  EXPECT_EQ(report.evaluated.size(), 12u);
}

TEST(Tuner, StrategiesAgreeOnConvexCurve) {
  Tuner tuner(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  ParamSpace space;
  space.add_range("unroll", 1, 12);
  const auto workload = magicfilter_workload();
  const auto exhaustive =
      tuner.tune(space, workload, Strategy::kExhaustive);
  const auto climb = tuner.tune(space, workload, Strategy::kHillClimb);
  // The magicfilter curve is convex: hill climbing reaches the optimum.
  EXPECT_EQ(climb.best.get("unroll"), exhaustive.best.get("unroll"));
}

TEST(Tuner, RandomBudgetedSearchTouchesFewerPoints) {
  Tuner tuner(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  ParamSpace space;
  space.add_range("unroll", 1, 12);
  const auto report =
      tuner.tune(space, magicfilter_workload(), Strategy::kRandom, 5);
  EXPECT_EQ(report.evaluated.size(), 5u);
}

TEST(Tuner, StaticTuningDiffersAcrossPlatforms) {
  // The same space tuned on both platforms: the Xeon tolerates deeper
  // unrolling than the embedded core — "platform specific tuning".
  ParamSpace space;
  space.add_range("unroll", 1, 12);
  const auto workload = magicfilter_workload();

  Tuner tegra(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  Tuner xeon(Harness(factory(arch::xeon_x5550()), nullptr, quick_plan()),
             Direction::kMinimize);
  const auto rt = tegra.tune(space, workload);
  const auto rx = xeon.tune(space, workload);

  // Compare the widths of the 10%-sweet-spots.
  auto width = [&space](const TuneReport& r, Direction dir) {
    std::vector<double> metric(space.size());
    for (const auto& [idx, v] : r.evaluated) metric[idx] = v;
    return sweet_spot(space, metric, dir).width;
  };
  EXPECT_LT(width(rt, Direction::kMinimize),
            width(rx, Direction::kMinimize));
}

TEST(Tuner, InstanceSpecificTuning) {
  // Membench: the best element width depends on whether the array fits
  // L1 — an instance-specific parameter, the paper's Sec. VI-B point.
  Workload bench = [](const Point& p, sim::Machine& m) {
    kernels::MembenchParams mp;
    mp.array_bytes = static_cast<std::uint64_t>(p.get("array_kb")) * 1024;
    mp.elem_bits = static_cast<std::uint32_t>(p.get("elem_bits"));
    mp.unroll = 8;
    mp.passes = 4;
    return kernels::membench_run(m, mp).sim.seconds /
           static_cast<double>(mp.bytes_accessed());
  };

  std::map<std::string, ParamSpace> instances;
  for (const std::int64_t kb : {16, 256}) {
    ParamSpace s;
    s.add("array_kb", {kb});
    s.add("elem_bits", {32, 64, 128});
    instances.emplace("size_" + std::to_string(kb) + "KB", s);
  }

  Tuner tuner(Harness(factory(arch::snowball()), nullptr, quick_plan()),
              Direction::kMinimize);
  const auto reports = tuner.tune_per_instance(instances, bench);
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& [key, report] : reports) {
    EXPECT_GT(report.evaluations, 0u) << key;
    EXPECT_EQ(report.best.get("elem_bits"), 64) << key;  // NEON D-loads win
  }
}

TEST(Tuner, TrajectoryIsMonotoneBestSoFar) {
  Tuner tuner(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  ParamSpace space;
  space.add_range("unroll", 1, 12);
  for (const Strategy s : {Strategy::kExhaustive, Strategy::kRandom}) {
    const auto report = tuner.tune(space, magicfilter_workload(), s, 8);
    ASSERT_FALSE(report.trajectory.empty());
    // Strictly improving values at strictly increasing evaluation counts,
    // ending at the reported best.
    for (std::size_t i = 1; i < report.trajectory.size(); ++i) {
      EXPECT_GT(report.trajectory[i].first, report.trajectory[i - 1].first);
      EXPECT_LT(report.trajectory[i].second, report.trajectory[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(report.trajectory.back().second, report.best_value);
  }
}

TEST(Tuner, PublishesEvaluationMetrics) {
  obs::Registry& registry = obs::metrics();
  registry.reset_for_test();
  Tuner tuner(Harness(factory(arch::tegra2_node()), nullptr, quick_plan()),
              Direction::kMinimize);
  ParamSpace space;
  space.add_range("unroll", 1, 4);
  const auto report = tuner.tune(space, magicfilter_workload());
  EXPECT_DOUBLE_EQ(
      registry.counter("tuner.evaluations", {{"strategy", "exhaustive"}})
          .value(),
      static_cast<double>(report.evaluations));
  EXPECT_DOUBLE_EQ(registry.gauge("tuner.best_value").value(),
                   report.best_value);
}

TEST(Tuner, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kExhaustive), "exhaustive");
  EXPECT_EQ(strategy_name(Strategy::kRandom), "random");
  EXPECT_EQ(strategy_name(Strategy::kHillClimb), "hill-climb");
}

}  // namespace
}  // namespace mb::core
