#include "counters/counters.h"

#include <gtest/gtest.h>

#include <set>

namespace mb::counters {
namespace {

TEST(Counters, NamesAreUniqueAndPapiStyle) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto name = counter_name(static_cast<Counter>(i));
    EXPECT_EQ(name.substr(0, 5), "PAPI_");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kCounterCount);
}

TEST(Counters, GetSetAdd) {
  CounterSet c;
  EXPECT_EQ(c.get(Counter::kTotCyc), 0u);
  c.set(Counter::kTotCyc, 100);
  c.add(Counter::kTotCyc, 20);
  EXPECT_EQ(c.get(Counter::kTotCyc), 120u);
}

TEST(Counters, AdditionMergesAllCounters) {
  CounterSet a, b;
  a.set(Counter::kL1Dca, 10);
  b.set(Counter::kL1Dca, 5);
  b.set(Counter::kL1Dcm, 2);
  const CounterSet c = a + b;
  EXPECT_EQ(c.get(Counter::kL1Dca), 15u);
  EXPECT_EQ(c.get(Counter::kL1Dcm), 2u);
}

TEST(Counters, IpcComputation) {
  CounterSet c;
  c.set(Counter::kTotCyc, 100);
  c.set(Counter::kTotIns, 250);
  EXPECT_DOUBLE_EQ(c.ipc(), 2.5);
  CounterSet zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
}

TEST(Counters, L1MissRatio) {
  CounterSet c;
  c.set(Counter::kL1Dca, 200);
  c.set(Counter::kL1Dcm, 50);
  EXPECT_DOUBLE_EQ(c.l1_miss_ratio(), 0.25);
}

TEST(Counters, ToStringListsAll) {
  CounterSet c;
  c.set(Counter::kFpOps, 42);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("PAPI_FP_OPS"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
}  // namespace mb::counters
