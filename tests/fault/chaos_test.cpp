// Chaos executor: node crashes recover through checkpoint/restart (or fail
// structurally without it), link flaps ride out on retransmission alone,
// and identical plans replay bit-identically.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "support/check.h"
#include "trace/trace.h"

namespace mb::fault {
namespace {

// Small BigDFT run: 4 Tibidabo nodes x 2 cores, ~0.6 s healthy makespan —
// big enough for faults to land mid-flight, small enough for a test.
ChaosScenario base_scenario() {
  ChaosScenario s;
  s.cluster = apps::tibidabo_cluster(4);
  s.cluster.mpi.recv_timeout_s = 1.0;
  s.cluster.mpi.max_send_retries = 3;
  s.plan.seed = 7;
  return s;
}

mpi::Program small_bigdft(std::uint64_t seed) {
  apps::BigDftParams params;
  params.ranks = 8;
  params.iterations = 3;
  params.compute_s_per_iter = 1.0;
  params.transpose_bytes = 4ull << 20;
  params.seed = seed;
  return apps::bigdft_program(params);
}

void enable_checkpointing(FaultPlan& plan) {
  plan.checkpoint.enabled = true;
  plan.checkpoint.interval_s = 0.1;
  plan.checkpoint.state_bytes_per_rank = 1.0 * 1024 * 1024;
  plan.checkpoint.write_bandwidth_bytes_per_s = 100e6;
  plan.checkpoint.read_bandwidth_bytes_per_s = 150e6;
  plan.checkpoint.restart_overhead_s = 0.2;
}

TEST(Chaos, NodeCrashRecoversWithCheckpointing) {
  ChaosScenario s = base_scenario();
  s.plan.crashes.push_back({2, 0.35});
  enable_checkpointing(s.plan);

  const ChaosResult r = run_chaos(s, small_bigdft(s.plan.seed));
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_GT(r.app_makespan_s, 0.0);
  // TTS = makespan + every recovery overhead, all of which are positive
  // here (lost work since the 0.1 s-boundary checkpoint, detection at the
  // 1 s recv timeout, restart + state re-read, checkpoint writes).
  EXPECT_GT(r.time_to_solution_s, r.app_makespan_s);
  EXPECT_GT(r.recovery.lost_work_s, 0.0);
  EXPECT_LE(r.recovery.lost_work_s, s.plan.checkpoint.interval_s + 1e-12);
  EXPECT_GT(r.recovery.detection_s, 0.0);
  EXPECT_GT(r.recovery.restart_s, 0.0);
  EXPECT_GT(r.recovery.checkpoint_write_s, 0.0);
  EXPECT_NEAR(r.time_to_solution_s,
              r.app_makespan_s + r.recovery.total(), 1e-12);
}

TEST(Chaos, RecoveredRunKeepsFaultMarksInTrace) {
  ChaosScenario s = base_scenario();
  s.plan.crashes.push_back({2, 0.35});
  enable_checkpointing(s.plan);

  const ChaosResult r = run_chaos(s, small_bigdft(s.plan.seed));
  ASSERT_TRUE(r.recovered);
  // The successful attempt itself saw no crash: the mark must have been
  // carried over from the failed attempt's trace.
  bool crash_mark = false;
  for (const trace::Record& rec : r.trace.records())
    if (rec.kind == trace::EventKind::kFault && rec.label == "crash:node2")
      crash_mark = true;
  EXPECT_TRUE(crash_mark);
}

TEST(Chaos, NodeCrashWithoutCheckpointingFails) {
  ChaosScenario s = base_scenario();
  s.plan.crashes.push_back({2, 0.35});  // checkpointing left disabled

  const ChaosResult r = run_chaos(s, small_bigdft(s.plan.seed));
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.recovered);
  EXPECT_EQ(r.attempts, 1u);
  // Node 2 hosts ranks 4 and 5; both must be reported dead, and the
  // survivors blocked on them must be named.
  ASSERT_EQ(r.failure.dead_ranks.size(), 2u);
  EXPECT_EQ(r.failure.dead_ranks[0], 4u);
  EXPECT_EQ(r.failure.dead_ranks[1], 5u);
  EXPECT_FALSE(r.failure.blocked.empty());
  EXPECT_GT(r.failure.detected_s, 0.35);  // detector fired after the crash
}

TEST(Chaos, LinkFlapRecoversWithoutRestart) {
  ChaosScenario s = base_scenario();
  s.cluster.mpi.recv_timeout_s = 0.0;  // outage < any legitimate timeout
  s.plan.link_downs.push_back({1, 0.05, 0.3});

  const ChaosResult r = run_chaos(s, small_bigdft(s.plan.seed));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.recovered);  // retransmission absorbed the outage
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_GT(r.retransmits, 0u);
}

TEST(Chaos, DeterministicReplay) {
  auto run_once = [] {
    ChaosScenario s = base_scenario();
    s.cluster.mpi.recv_timeout_s = 0.0;
    s.plan.losses.push_back({1, 0.05});
    return run_chaos(s, small_bigdft(s.plan.seed));
  };
  const ChaosResult a = run_once();
  const ChaosResult b = run_once();
  EXPECT_GT(a.injected_losses, 0u);
  EXPECT_EQ(a.injected_losses, b.injected_losses);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_DOUBLE_EQ(a.app_makespan_s, b.app_makespan_s);
  EXPECT_DOUBLE_EQ(a.time_to_solution_s, b.time_to_solution_s);
}

TEST(Chaos, CheckpointOverheadChargedOnCleanRun) {
  ChaosScenario s = base_scenario();
  enable_checkpointing(s.plan);  // no faults at all

  const ChaosResult r = run_chaos(s, small_bigdft(s.plan.seed));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.recovered);
  EXPECT_EQ(r.attempts, 1u);
  // Periodic checkpoint writes are paid even when nothing crashes —
  // that cost/interval trade-off is the point of the model.
  EXPECT_GT(r.recovery.checkpoint_write_s, 0.0);
  EXPECT_DOUBLE_EQ(r.recovery.lost_work_s, 0.0);
  EXPECT_DOUBLE_EQ(r.recovery.restart_s, 0.0);
}

TEST(Chaos, RejectsPlanThatFailsLint) {
  ChaosScenario s = base_scenario();
  s.plan.crashes.push_back({99, 0.3});  // cluster only has 4 nodes
  EXPECT_THROW(run_chaos(s, small_bigdft(s.plan.seed)), support::Error);
}

}  // namespace
}  // namespace mb::fault
