// FaultPlan JSON round-trips: parse -> serialize is byte-identical, the
// schema marker is enforced, and defaults survive partial documents.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::fault {
namespace {

FaultPlan sample_plan() {
  FaultPlan p;
  p.seed = 2013;
  p.crashes.push_back({2, 0.6});
  p.slowdowns.push_back({1, 0.1, 0.4, 5.0});
  p.link_downs.push_back({3, 0.3, 0.45});
  p.losses.push_back({0, 0.01});
  p.checkpoint.enabled = true;
  p.checkpoint.interval_s = 0.25;
  p.checkpoint.state_bytes_per_rank = 8.0 * 1024 * 1024;
  return p;
}

TEST(FaultPlanJson, RoundTripIsByteIdentical) {
  const std::string once = to_json(sample_plan());
  const std::string twice = to_json(plan_from_json(once));
  EXPECT_EQ(once, twice);
}

TEST(FaultPlanJson, RoundTripPreservesEveryField) {
  const FaultPlan p = plan_from_json(to_json(sample_plan()));
  EXPECT_EQ(p.seed, 2013u);
  ASSERT_EQ(p.crashes.size(), 1u);
  EXPECT_EQ(p.crashes[0].node, 2u);
  EXPECT_DOUBLE_EQ(p.crashes[0].at_s, 0.6);
  ASSERT_EQ(p.slowdowns.size(), 1u);
  EXPECT_DOUBLE_EQ(p.slowdowns[0].factor, 5.0);
  ASSERT_EQ(p.link_downs.size(), 1u);
  EXPECT_DOUBLE_EQ(p.link_downs[0].until_s, 0.45);
  ASSERT_EQ(p.losses.size(), 1u);
  EXPECT_DOUBLE_EQ(p.losses[0].probability, 0.01);
  EXPECT_TRUE(p.checkpoint.enabled);
  EXPECT_DOUBLE_EQ(p.checkpoint.interval_s, 0.25);
}

TEST(FaultPlanJson, MinimalDocumentYieldsEmptyPlan) {
  const FaultPlan p = plan_from_json(
      R"({"schema": "mb-fault-plan", "schema_version": 1})");
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.checkpoint.enabled);
  EXPECT_EQ(p.seed, 1u);  // default
}

TEST(FaultPlanJson, RejectsWrongSchema) {
  EXPECT_THROW(
      plan_from_json(R"({"schema": "mb-bench-report", "schema_version": 1})"),
      support::Error);
  EXPECT_THROW(plan_from_json(R"({"schema_version": 1})"), support::Error);
}

TEST(FaultPlanJson, RejectsUnsupportedVersion) {
  EXPECT_THROW(
      plan_from_json(R"({"schema": "mb-fault-plan", "schema_version": 99})"),
      support::Error);
}

TEST(FaultPlanJson, RejectsMalformedText) {
  EXPECT_THROW(plan_from_json("not json at all"), support::Error);
  EXPECT_THROW(plan_from_json(""), support::Error);
}

TEST(FaultPlanJson, CheckpointRequiresEnabledFlag) {
  // A checkpoint object without "enabled" is a malformed document, not a
  // silently-disabled one.
  EXPECT_THROW(plan_from_json(R"({"schema": "mb-fault-plan",
                                  "schema_version": 1,
                                  "checkpoint": {"interval_s": 10}})"),
               support::Error);
}

}  // namespace
}  // namespace mb::fault
