// The ISSUE-level differential property: across a seeded 500-program
// sweep the verifier flags exactly the programs the DES cannot complete,
// and for every clean program the static cost bounds bracket the measured
// makespan with exactly matching byte counters. A smaller sweep exercises
// the sharded-identity and chaos-determinism arms (they re-run the DES,
// so the full 500 would dominate test wall-clock).
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "gen/differential.h"
#include "gen/generator.h"
#include "support/hash.h"

namespace mb::gen {
namespace {

TEST(Differential, FiveHundredSeedSweepAgreesOnAllOracles) {
  SweepSpec spec;
  spec.base.defect_prob = 0.2;  // mix defective programs into the sweep
  DiffConfig config;
  config.sim_jobs = 0;  // sharded arm covered by the smaller sweep below
  config.check_static = true;

  int defective = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    const std::uint64_t gen_seed = support::derive_seed(2013, seed);
    const GenParams params = sweep_params(gen_seed, spec);
    const SeedOutcome outcome = run_differential(gen_seed, params, config);
    if (!outcome.defect.empty()) ++defective;
    ASSERT_TRUE(outcome.ok())
        << "seed " << seed << " (" << pattern_name(params.pattern)
        << ", defect '" << outcome.defect
        << "'): " << outcome.discrepancies.front();
    // Clean programs must have exercised the static arm.
    if (outcome.verifier_errors == 0) {
      EXPECT_TRUE(outcome.has_static);
    }
  }
  // The defect rate really injected defects into the sweep.
  EXPECT_GT(defective, 50);
  EXPECT_LT(defective, 200);
}

TEST(Differential, ShardedAndChaosArmsAgreeOnCleanPrograms) {
  SweepSpec spec;
  spec.base.defect_prob = 0.0;
  DiffConfig config;
  config.sim_jobs = 3;
  config.with_chaos = true;

  int chaos_runs = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::uint64_t gen_seed = support::derive_seed(7, seed);
    const GenParams params = sweep_params(gen_seed, spec);
    const SeedOutcome outcome = run_differential(gen_seed, params, config);
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.discrepancies.front();
    EXPECT_TRUE(outcome.has_sharded);
    if (outcome.has_chaos) ++chaos_runs;
  }
  EXPECT_EQ(chaos_runs, 20);
}

TEST(Differential, PretendCleanForcesDiscrepancyOnDefectiveSeeds) {
  GenParams params;
  params.defect_prob = 1.0;
  DiffConfig config;
  config.pretend_clean = true;
  const SeedOutcome outcome = run_differential(11, params, config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.failed_oracle, "verifier-vs-des");
  // The honest differential on the same seed agrees with itself.
  config.pretend_clean = false;
  EXPECT_TRUE(run_differential(11, params, config).ok());
}

TEST(Differential, UpgradedTreeRunsTheSameOracles) {
  GenParams params;
  params.pattern = Pattern::kHalo;
  DiffConfig config;
  config.tree = "upgraded";
  config.sim_jobs = 2;
  const SeedOutcome outcome = run_differential(3, params, config);
  ASSERT_TRUE(outcome.ok()) << outcome.discrepancies.front();
  EXPECT_TRUE(outcome.has_sharded);
  EXPECT_TRUE(outcome.has_static);
}

}  // namespace
}  // namespace mb::gen
