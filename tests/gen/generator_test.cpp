// The generator's contract: deterministic in (seed, params), clean
// programs verify clean and complete, defective programs are flagged
// and block — the exactness the differential oracle builds on.
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "support/check.h"
#include "support/json.h"
#include "verify/mpi_verify.h"

namespace mb::gen {
namespace {

TEST(Generator, DeterministicInSeedAndParams) {
  GenParams params;
  params.pattern = Pattern::kMixed;
  params.collective_prob = 0.5;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const GeneratedProgram a = generate(seed, params);
    const GeneratedProgram b = generate(seed, params);
    EXPECT_EQ(program_digest(a.program), program_digest(b.program));
    EXPECT_EQ(a.defect, b.defect);
  }
}

TEST(Generator, DistinctSeedsProduceDistinctPrograms) {
  GenParams params;
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 0; seed < 32; ++seed)
    digests.insert(program_digest(generate(seed, params).program));
  // Collisions are theoretically possible but 32 identical draws are not.
  EXPECT_GT(digests.size(), 24u);
}

TEST(Generator, CleanProgramsVerifyCleanForEveryPattern) {
  for (Pattern pattern : {Pattern::kHalo, Pattern::kAllToAll,
                          Pattern::kPipeline, Pattern::kMasterWorker,
                          Pattern::kMixed}) {
    GenParams params;
    params.pattern = pattern;
    params.defect_prob = 0.0;
    params.collective_prob = 0.6;
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
      const GeneratedProgram g = generate(seed, params);
      ASSERT_FALSE(g.has_defect());
      const verify::Report report = verify::verify_program(g.program);
      EXPECT_FALSE(report.has_errors())
          << pattern_name(pattern) << " seed " << seed << ": "
          << render_diagnostics(report);
    }
  }
}

TEST(Generator, DefectiveProgramsAlwaysFailVerification) {
  GenParams params;
  params.defect_prob = 1.0;
  std::set<std::string> classes;
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    const GeneratedProgram g = generate(seed, params);
    ASSERT_TRUE(g.has_defect());
    classes.insert(g.defect);
    const verify::Report report = verify::verify_program(g.program);
    EXPECT_TRUE(report.has_errors()) << g.defect << " seed " << seed;
  }
  // All three defect classes show up across 48 seeds.
  EXPECT_EQ(classes.size(), 3u);
}

TEST(Generator, ParamsRoundTripThroughJson) {
  GenParams params;
  params.pattern = Pattern::kPipeline;
  params.ranks = 12;
  params.rounds = 5;
  params.min_bytes = 128;
  params.max_bytes = 1 << 20;
  params.compute_s = 0.0035;
  params.imbalance = 0.42;
  params.collective_prob = 0.1;
  params.defect_prob = 0.25;

  support::JsonWriter w;
  write_params(w, params);
  const GenParams back = params_from_json(support::parse_json(w.str()));
  EXPECT_EQ(params_hash(back), params_hash(params));
}

TEST(Generator, RejectsOutOfRangeParams) {
  GenParams params;
  params.ranks = 3;  // odd and below the minimum
  EXPECT_THROW(generate(0, params), support::Error);
  params = GenParams{};
  params.min_bytes = 0;
  EXPECT_THROW(generate(0, params), support::Error);
  EXPECT_THROW(parse_pattern("ring"), support::Error);
}

TEST(Generator, SweepCoversPatternsAndRankCounts) {
  SweepSpec spec;
  std::set<Pattern> patterns;
  std::set<std::uint32_t> ranks;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const GenParams p = sweep_params(seed, spec);
    patterns.insert(p.pattern);
    ranks.insert(p.ranks);
    EXPECT_EQ(params_hash(p), params_hash(sweep_params(seed, spec)));
  }
  EXPECT_EQ(patterns.size(), 5u);
  EXPECT_EQ(ranks.size(), 4u);

  spec.pin_pattern = true;
  spec.base.pattern = Pattern::kHalo;
  spec.pin_ranks = true;
  spec.base.ranks = 6;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const GenParams p = sweep_params(seed, spec);
    EXPECT_EQ(p.pattern, Pattern::kHalo);
    EXPECT_EQ(p.ranks, 6u);
  }
}

}  // namespace
}  // namespace mb::gen
