// mb-repro bundles: byte-identical serialization round-trips and replays
// whose digests match the capture for any --sim-jobs worker count — the
// single-artifact reproduction contract.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "gen/bundle.h"
#include "gen/differential.h"
#include "gen/generator.h"
#include "support/check.h"

namespace mb::gen {
namespace {

SeedOutcome capture(std::uint64_t gen_seed, const DiffConfig& config,
                    double defect_prob) {
  GenParams params;
  params.defect_prob = defect_prob;
  return run_differential(gen_seed, params, config);
}

TEST(ReproBundle, JsonRoundTripIsByteIdentical) {
  DiffConfig config;
  config.with_chaos = true;  // exercises the embedded fault plan too
  const SeedOutcome outcome = capture(5, config, 0.0);
  ASSERT_TRUE(outcome.has_fault_plan);
  const ReproBundle bundle = make_bundle(outcome, config, 2013);

  const std::string text = to_json(bundle);
  const ReproBundle back = bundle_from_json(text);
  EXPECT_EQ(to_json(back), text);
  EXPECT_EQ(back.seed, 2013u);
  EXPECT_EQ(back.gen_seed, 5u);
  EXPECT_TRUE(back.has_fault_plan);
  EXPECT_EQ(back.expected.des_digest, bundle.expected.des_digest);
  EXPECT_EQ(back.expected.chaos_digest, bundle.expected.chaos_digest);
}

TEST(ReproBundle, RejectsForeignDocuments) {
  EXPECT_THROW(bundle_from_json("{\"schema\": \"mb-fault-plan\"}"),
               support::Error);
  EXPECT_THROW(bundle_from_json("not json"), support::Error);
}

TEST(Replay, DigestsMatchAcrossSimJobsWorkerCounts) {
  DiffConfig config;
  config.sim_jobs = 2;
  config.with_chaos = true;
  const SeedOutcome outcome = capture(9, config, 0.0);
  ASSERT_TRUE(outcome.ok());
  const ReproBundle bundle = make_bundle(outcome, config, 2013);

  // The property the ISSUE names: byte-identical replay across the
  // --sim-jobs 1/4 matrix (and the bundle's own recorded count).
  for (int sim_jobs : {-1, 1, 4}) {
    const ReplayOutcome rep = replay_bundle(bundle, sim_jobs);
    EXPECT_TRUE(rep.match())
        << "sim_jobs " << sim_jobs << ": " << rep.mismatches.front();
  }
}

TEST(Replay, DefectiveSeedBundleReplaysFaithfully) {
  // The deliberate-discrepancy fixture: pretend_clean makes the capture
  // disagree, the bundle records the honest digests, and replay confirms
  // them — the anomaly is reproducible from the artifact alone.
  DiffConfig config;
  config.pretend_clean = true;
  const SeedOutcome outcome = capture(11, config, 1.0);
  ASSERT_FALSE(outcome.ok());
  const ReproBundle bundle = make_bundle(outcome, config, 2013);
  EXPECT_EQ(bundle.oracle, "verifier-vs-des");
  EXPECT_FALSE(bundle.expected.des_completed);

  const ReplayOutcome rep = replay_bundle(bundle);
  EXPECT_TRUE(rep.match()) << rep.mismatches.front();
  EXPECT_GT(rep.observed.verifier_errors, 0u);
}

TEST(Replay, DetectsForgedDigests) {
  DiffConfig config;
  config.sim_jobs = 0;
  const SeedOutcome outcome = capture(13, config, 0.0);
  ASSERT_TRUE(outcome.ok());
  ReproBundle bundle = make_bundle(outcome, config, 2013);
  bundle.expected.des_digest ^= 1;  // corrupt one recorded digest
  const ReplayOutcome rep = replay_bundle(bundle);
  ASSERT_FALSE(rep.match());
  EXPECT_NE(rep.mismatches.front().find("des_digest"), std::string::npos);
}

}  // namespace
}  // namespace mb::gen
