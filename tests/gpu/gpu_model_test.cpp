#include "gpu/gpu_model.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::gpu {
namespace {

GpuKernel sp_kernel(std::uint64_t elements, std::uint64_t buffer) {
  GpuKernel k;
  k.flops_per_element = 64.0;  // compute-dense (SPECFEM3D-like element work)
  k.bytes_per_element = 8.0;
  k.elements = elements;
  k.buffer_elements = buffer;
  return k;
}

TEST(GpuModel, DevicesHaveSaneParameters) {
  for (const auto& d : {mali_t604(), tegra3_gpu()}) {
    EXPECT_TRUE(d.general_purpose) << d.name;
    EXPECT_GT(d.peak_sp_gflops, 0.0);
    EXPECT_GT(d.mem_bandwidth_bytes_per_s, 0.0);
    EXPECT_GT(d.power_w, 0.0);
  }
  EXPECT_FALSE(mali_400().general_purpose);
}

TEST(GpuModel, NonGpgpuDeviceRejected) {
  EXPECT_THROW(gpu_kernel_seconds(mali_400(), sp_kernel(1 << 16, 1024)),
               support::Error);
}

TEST(GpuModel, TimePositiveAndAboveComputeLowerBound) {
  const auto d = mali_t604();
  const auto k = sp_kernel(1 << 20, 4096);
  const double t = gpu_kernel_seconds(d, k);
  const double lower = static_cast<double>(k.elements) *
                       k.flops_per_element /
                       (d.peak_sp_gflops * 1e9);
  EXPECT_GT(t, lower);
}

TEST(GpuModel, TinyBuffersAreLaunchOverheadBound) {
  const auto d = mali_t604();
  const double small = gpu_kernel_seconds(d, sp_kernel(1 << 18, 64));
  const double right = gpu_kernel_seconds(d, sp_kernel(1 << 18, 4096));
  EXPECT_GT(small, 5.0 * right);
}

TEST(GpuModel, OversizedBuffersSpillLocalMemory) {
  const auto d = mali_t604();
  // 4-byte elements: local memory holds 8192 of them.
  const double fits = gpu_kernel_seconds(d, sp_kernel(1 << 20, 8192));
  const double spills = gpu_kernel_seconds(d, sp_kernel(1 << 20, 1 << 18));
  EXPECT_GT(spills, 1.5 * fits);
}

TEST(GpuModel, BufferOptimumIsInterior) {
  // The convex curve of Sec. VI-B: the best buffer is neither the
  // smallest nor the largest.
  const auto d = mali_t604();
  double best = 1e300;
  std::uint64_t best_b = 0;
  for (const std::uint64_t b : {64ull, 512ull, 2048ull, 8192ull,
                                65536ull, 1ull << 18}) {
    const double t = gpu_kernel_seconds(d, sp_kernel(1 << 20, b));
    if (t < best) {
      best = t;
      best_b = b;
    }
  }
  EXPECT_GT(best_b, 64u);
  EXPECT_LT(best_b, 1u << 18);
}

TEST(GpuModel, EnergyIsPowerTimesTime) {
  const auto d = mali_t604();
  const auto k = sp_kernel(1 << 16, 4096);
  EXPECT_DOUBLE_EQ(gpu_kernel_joules(d, k),
                   d.power_w * gpu_kernel_seconds(d, k));
}

TEST(GpuModel, KernelValidation) {
  GpuKernel k = sp_kernel(1024, 0);
  EXPECT_THROW(k.validate(), support::Error);
  k = sp_kernel(0, 64);
  EXPECT_THROW(k.validate(), support::Error);
}

}  // namespace
}  // namespace mb::gpu
