#include "gpu/hybrid.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "power/energy.h"
#include "support/check.h"

namespace mb::gpu {
namespace {

TEST(Hybrid, ThroughputIsSumOfEngines) {
  const auto t = hybrid_sp_throughput(exynos5_node());
  EXPECT_NEAR(t.total_gflops, t.cpu_gflops + t.gpu_gflops, 1e-9);
  EXPECT_GT(t.gpu_fraction, 0.5);  // the GPU carries most SP work
  EXPECT_LT(t.gpu_fraction, 1.0);
}

TEST(Hybrid, PrototypeReachesThePapersEfficiencyGoal) {
  // Sec. VI-A: "even an efficiency of 5 or 7 GFLOPS per Watt would be an
  // accomplishment" for the Exynos5 + Mali-T604 node.
  const auto t = hybrid_sp_throughput(exynos5_node());
  EXPECT_GT(t.gflops_per_watt, 5.0);
  EXPECT_LT(t.gflops_per_watt, 20.0);
}

TEST(Hybrid, HybridBeatsCpuOnlyPerWatt) {
  const auto node = exynos5_node();
  const auto hybrid = hybrid_sp_throughput(node);
  const double cpu_only =
      node.cpu.peak_sp_gflops() * 0.5 / node.cpu.power_w;
  EXPECT_GT(hybrid.gflops_per_watt, cpu_only);
}

TEST(Hybrid, Tegra3ExtensionIsGpgpuCapable) {
  const auto node = tegra3_node();
  EXPECT_TRUE(node.gpu.general_purpose);
  EXPECT_NO_THROW(hybrid_sp_throughput(node));
}

TEST(Hybrid, SecondsInverselyProportionalToThroughput) {
  const auto node = exynos5_node();
  const double t1 = hybrid_seconds(node, 1e12);
  const double t2 = hybrid_seconds(node, 2e12);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(Hybrid, SnowballGpuCannotFormAHybrid) {
  HybridNode node{arch::snowball(), mali_400()};
  EXPECT_THROW(hybrid_sp_throughput(node), support::Error);
}

TEST(Hybrid, EfficiencyBoundsChecked) {
  EXPECT_THROW(hybrid_sp_throughput(exynos5_node(), 0.0), support::Error);
  EXPECT_THROW(hybrid_sp_throughput(exynos5_node(), 1.5), support::Error);
}

TEST(Hybrid, HybridNodeBeatsXeonPerWatt) {
  // The whole Mont-Blanc bet in one assertion: the embedded hybrid node's
  // SP GFLOPS/W beats the server chip's.
  const auto hybrid = hybrid_sp_throughput(exynos5_node());
  const auto xeon = arch::xeon_x5550();
  const double xeon_per_watt =
      xeon.peak_sp_gflops() * 0.5 / xeon.power_w;
  EXPECT_GT(hybrid.gflops_per_watt, 5.0 * xeon_per_watt);
}

}  // namespace
}  // namespace mb::gpu
