#include <gtest/gtest.h>

#include "kernels/chess/position.h"
#include "kernels/chess/search.h"

namespace mb::kernels::chess {
namespace {

TEST(Bitboard, BasicGeometry) {
  EXPECT_EQ(file_of(0), 0);
  EXPECT_EQ(rank_of(0), 0);
  EXPECT_EQ(make_square(7, 7), 63);
  EXPECT_EQ(popcount(kRank1), 8);
  EXPECT_EQ(lsb(0b1000), 3);
}

TEST(Bitboard, PopLsbConsumes) {
  Bitboard b = 0b1010;
  EXPECT_EQ(pop_lsb(b), 1);
  EXPECT_EQ(pop_lsb(b), 3);
  EXPECT_EQ(b, 0u);
}

TEST(Bitboard, KnightAttacksFromCorner) {
  // a1 knight attacks b3 and c2 only.
  const Bitboard a = knight_attacks(0);
  EXPECT_EQ(popcount(a), 2);
  EXPECT_TRUE(a & bb(make_square(1, 2)));
  EXPECT_TRUE(a & bb(make_square(2, 1)));
}

TEST(Bitboard, KnightAttacksFromCenter) {
  EXPECT_EQ(popcount(knight_attacks(make_square(4, 4))), 8);
}

TEST(Bitboard, KingAttacksCounts) {
  EXPECT_EQ(popcount(king_attacks(0)), 3);
  EXPECT_EQ(popcount(king_attacks(make_square(4, 4))), 8);
}

TEST(Bitboard, PawnAttacksDirection) {
  const Square e4 = make_square(4, 3);
  const Bitboard w = pawn_attacks(kWhite, e4);
  EXPECT_TRUE(w & bb(make_square(3, 4)));
  EXPECT_TRUE(w & bb(make_square(5, 4)));
  const Bitboard b = pawn_attacks(kBlack, e4);
  EXPECT_TRUE(b & bb(make_square(3, 2)));
}

TEST(Bitboard, RookAttacksBlockedByOccupancy) {
  // Rook on a1, blocker on a4: attacks a2,a3,a4 up the file.
  const Bitboard occ = bb(make_square(0, 3));
  const Bitboard a = rook_attacks(0, occ);
  EXPECT_TRUE(a & bb(make_square(0, 1)));
  EXPECT_TRUE(a & bb(make_square(0, 3)));   // blocker included
  EXPECT_FALSE(a & bb(make_square(0, 4)));  // beyond blocker
  EXPECT_TRUE(a & bb(make_square(7, 0)));   // open rank
}

TEST(Bitboard, BishopAttacksOpenBoard) {
  EXPECT_EQ(popcount(bishop_attacks(make_square(3, 3), 0)), 13);
}

TEST(Position, InitialPositionSetup) {
  const Position p = Position::initial();
  EXPECT_EQ(p.side_to_move(), kWhite);
  EXPECT_EQ(p.count(kWhite, kPawn), 8);
  EXPECT_EQ(p.count(kBlack, kQueen), 1);
  EXPECT_EQ(popcount(p.occupied()), 32);
  EXPECT_EQ(p.castling(), 0b1111);
  EXPECT_FALSE(p.in_check());
}

TEST(Position, InitialHas20Moves) {
  EXPECT_EQ(Position::initial().legal_moves().size(), 20u);
}

TEST(Perft, StartposDepths1To4) {
  // Canonical values: 20, 400, 8 902, 197 281.
  const Position p = Position::initial();
  EXPECT_EQ(perft(p, 1), 20u);
  EXPECT_EQ(perft(p, 2), 400u);
  EXPECT_EQ(perft(p, 3), 8902u);
  EXPECT_EQ(perft(p, 4), 197281u);
}

TEST(Perft, KiwipeteDepths1To3) {
  // Position 2 from the CPW perft suite: 48, 2 039, 97 862.
  // Exercises castling, en passant, promotions and pins.
  const Position p = Position::from_fen(
      "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq -");
  EXPECT_EQ(perft(p, 1), 48u);
  EXPECT_EQ(perft(p, 2), 2039u);
  EXPECT_EQ(perft(p, 3), 97862u);
}

TEST(Perft, EnPassantPosition3) {
  // Position 3 from the CPW suite: 14, 191, 2 812, 43 238.
  const Position p = Position::from_fen("8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - -");
  EXPECT_EQ(perft(p, 1), 14u);
  EXPECT_EQ(perft(p, 2), 191u);
  EXPECT_EQ(perft(p, 3), 2812u);
  EXPECT_EQ(perft(p, 4), 43238u);
}

TEST(Perft, PromotionPosition4) {
  // Position 4 from the CPW suite: 6, 264, 9 467.
  const Position p = Position::from_fen(
      "r3k2r/Pppp1ppp/1b3nbN/nP6/BBP1P3/q4N2/Pp1P2PP/R2Q1RK1 w kq -");
  EXPECT_EQ(perft(p, 1), 6u);
  EXPECT_EQ(perft(p, 2), 264u);
  EXPECT_EQ(perft(p, 3), 9467u);
}

TEST(Move, StringRoundTrip) {
  const Move m(make_square(4, 1), make_square(4, 3), Move::kDoublePush);
  EXPECT_EQ(m.to_string(), "e2e4");
  const Move promo(make_square(0, 6), make_square(0, 7), Move::kQuiet,
                   kQueen);
  EXPECT_EQ(promo.to_string(), "a7a8q");
  EXPECT_TRUE(promo.is_promotion());
}

TEST(Evaluate, InitialPositionIsBalanced) {
  EXPECT_EQ(evaluate(Position::initial()), 0);
}

TEST(Evaluate, MaterialUpIsPositive) {
  // White has an extra queen.
  const Position p = Position::from_fen(
      "rnb1kbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -");
  EXPECT_GT(evaluate(p), 700);
}

TEST(Evaluate, SideToMovePerspective) {
  const Position p = Position::from_fen(
      "rnb1kbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR b KQkq -");
  EXPECT_LT(evaluate(p), -700);  // black to move, black is down a queen
}

TEST(Search, FindsHangingQueenCapture) {
  // Black queen hangs on d5; the e4 pawn should take it.
  const Position p = Position::from_fen("7k/8/8/3q4/4P3/8/8/4K3 w - -");
  const SearchResult r = search(p, 3);
  EXPECT_EQ(r.best.to_string(), "e4d5");
  // The eval is absolute (white was down a queen and ends up a pawn up),
  // so the score lands near +100, not +900.
  EXPECT_GT(r.score, 50);
}

TEST(Search, DeeperSearchVisitsMoreNodes) {
  const Position p = Position::initial();
  const auto d2 = search(p, 2);
  const auto d4 = search(p, 4);
  EXPECT_GT(d4.stats.nodes, 10 * d2.stats.nodes);
}

TEST(Search, AlphaBetaProducesCutoffs) {
  const auto r = search(Position::initial(), 4);
  EXPECT_GT(r.stats.cutoffs, 0u);
  EXPECT_GT(r.stats.nodes, 1000u);
}

TEST(Search, MateInOneFound) {
  // Fool's mate pattern: black to move mates with Qh4#.
  const Position p = Position::from_fen(
      "rnbqkbnr/pppp1ppp/8/4p3/6P1/5P2/PPPPP2P/RNBQKBNR b KQkq -");
  const SearchResult r = search(p, 2);
  EXPECT_EQ(r.best.to_string(), "d8h4");
  EXPECT_GT(r.score, 20'000);
}

}  // namespace
}  // namespace mb::kernels::chess
