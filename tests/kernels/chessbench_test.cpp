#include "kernels/chessbench.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

TEST(ChessbenchNative, DeterministicCounts) {
  ChessbenchParams p;
  p.depth = 3;
  p.positions = 2;
  const auto a = chessbench_native(p);
  const auto b = chessbench_native(p);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.evals, b.evals);
  EXPECT_EQ(a.bitboard_ops, b.bitboard_ops);
  EXPECT_GT(a.nodes, 100u);
}

TEST(ChessbenchNative, MorePositionsMoreNodes) {
  ChessbenchParams a, b;
  a.depth = b.depth = 3;
  a.positions = 1;
  b.positions = 3;
  EXPECT_GT(chessbench_native(b).nodes, chessbench_native(a).nodes);
}

TEST(ChessbenchParams, Validation) {
  ChessbenchParams p;
  p.depth = 0;
  EXPECT_THROW(p.validate(), support::Error);
  p = ChessbenchParams{};
  p.positions = 100;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(ChessbenchSuite, AllFensParse) {
  for (const auto& fen : chessbench_suite())
    EXPECT_NO_THROW(chess::Position::from_fen(fen)) << fen;
}

TEST(ChessbenchSim, NodesPerSecondPositive) {
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  ChessbenchParams p;
  p.depth = 3;
  p.positions = 2;
  const auto r = chessbench_run(m, p);
  EXPECT_GT(r.nodes_per_s, 0.0);
  EXPECT_EQ(r.stats.nodes, chessbench_native(p).nodes);
}

TEST(ChessbenchSim, XeonToArmRatioNearPaper) {
  // Table II StockFish ratio: 20.2x machine-to-machine. The 64-bit
  // bitboard work decomposes on the 32-bit A9, so the per-core gap is much
  // larger than CoreMark's.
  ChessbenchParams p;
  p.depth = 3;
  p.positions = 2;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double xeon = chessbench_run(mx, p).nodes_per_s;
  const double arm = chessbench_run(ma, p).nodes_per_s;
  const double machine_ratio = (xeon * 4.0) / (arm * 2.0);
  EXPECT_GT(machine_ratio, 12.0);
  EXPECT_LT(machine_ratio, 30.0);
}

TEST(ChessbenchSim, ArmPerCoreGapLargerThanCoremarkStyle) {
  ChessbenchParams p;
  p.depth = 3;
  p.positions = 1;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double gap = chessbench_run(ma, p).sim.seconds /
                     chessbench_run(mx, p).sim.seconds;
  EXPECT_GT(gap, 5.0);  // int64-heavy: worse than plain integer code
}


TEST(ChessbenchTt, TtReducesNodesAndTracksHits) {
  ChessbenchParams plain;
  plain.depth = 4;
  plain.positions = 2;
  ChessbenchParams with_tt = plain;
  with_tt.tt_bytes = 1 << 20;
  const auto a = chessbench_native(plain);
  const auto b = chessbench_native(with_tt);
  EXPECT_LT(b.nodes, a.nodes);
  EXPECT_GT(b.tt_probes, 0u);
  EXPECT_GT(b.tt_hits, 0u);
  EXPECT_EQ(a.tt_probes, 0u);
}

TEST(ChessbenchTt, OversizeTtRejected) {
  ChessbenchParams p;
  p.tt_bytes = 1ull << 30;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(ChessbenchTt, SimulatedRunWithTtCompletes) {
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  ChessbenchParams p;
  p.depth = 3;
  p.positions = 1;
  p.tt_bytes = 512 << 10;
  const auto r = chessbench_run(m, p);
  EXPECT_GT(r.nodes_per_s, 0.0);
  EXPECT_GT(r.stats.tt_probes, 0u);
}

}  // namespace
}  // namespace mb::kernels
