#include "kernels/coremark.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

TEST(Crc16, KnownVectors) {
  // CRC16/CCITT-FALSE with seed 0xFFFF over "123456789" is 0x29B1.
  const char* s = "123456789";
  EXPECT_EQ(crc16(reinterpret_cast<const std::uint8_t*>(s), 9, 0xFFFF),
            0x29B1);
  // Empty data returns the seed.
  EXPECT_EQ(crc16(nullptr, 0, 0x1234), 0x1234);
}

TEST(Crc16, SensitiveToEveryByte) {
  std::uint8_t data[4] = {1, 2, 3, 4};
  const auto base = crc16(data, 4);
  data[2] ^= 1;
  EXPECT_NE(crc16(data, 4), base);
}

TEST(CoremarkNative, Deterministic) {
  CoremarkParams p;
  p.iterations = 4;
  EXPECT_EQ(coremark_native(p, 42), coremark_native(p, 42));
  EXPECT_NE(coremark_native(p, 42), coremark_native(p, 43));
}

TEST(CoremarkNative, IterationCountChangesCrc) {
  CoremarkParams a, b;
  a.iterations = 2;
  b.iterations = 3;
  EXPECT_NE(coremark_native(a), coremark_native(b));
}

TEST(CoremarkParams, Validation) {
  CoremarkParams p;
  p.list_nodes = 1;
  EXPECT_THROW(p.validate(), support::Error);
  p = CoremarkParams{};
  p.matrix_n = 100;
  EXPECT_THROW(p.validate(), support::Error);
  p = CoremarkParams{};
  p.iterations = 0;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(CoremarkSim, CrcMatchesNative) {
  // The simulated run executes the same math: identical checksum.
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  CoremarkParams p;
  p.iterations = 4;
  const auto r = coremark_run(m, p, 9);
  EXPECT_EQ(r.crc, coremark_native(p, 9));
}

TEST(CoremarkSim, ScoreScalesWithIterations) {
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  CoremarkParams p;
  p.iterations = 2;
  const auto r2 = coremark_run(m, p);
  p.iterations = 8;
  const auto r8 = coremark_run(m, p);
  // Score is a rate: roughly constant across iteration counts.
  EXPECT_NEAR(r8.iterations_per_s / r2.iterations_per_s, 1.0, 0.35);
}

TEST(CoremarkSim, XeonToArmRatioNearPaper) {
  // Table II CoreMark ratio: 7.1x machine-to-machine (4 cores vs 2).
  CoremarkParams p;
  p.iterations = 4;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double xeon = coremark_run(mx, p).iterations_per_s;
  const double arm = coremark_run(ma, p).iterations_per_s;
  const double machine_ratio = (xeon * 4.0) / (arm * 2.0);
  EXPECT_GT(machine_ratio, 4.0);
  EXPECT_LT(machine_ratio, 12.0);
}

TEST(CoremarkSim, IntegerRatioSmallerThanLinpackStyleFpRatio) {
  // The paper's central observation: integer embedded workloads close the
  // gap, DP floating point does not. Compare per-core cycle counts of the
  // same work on both platforms.
  CoremarkParams p;
  p.iterations = 2;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double xeon_s = coremark_run(mx, p).sim.seconds;
  const double arm_s = coremark_run(ma, p).sim.seconds;
  EXPECT_LT(arm_s / xeon_s, 15.0);  // per-core gap stays moderate
}

}  // namespace
}  // namespace mb::kernels
