#include "kernels/latency.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

sim::Machine make(const arch::Platform& p) {
  return sim::Machine(p, sim::PagePolicy::kConsecutive, support::Rng(1));
}

TEST(LatencyNative, PermutationIsASingleCycle) {
  LatencyParams p;
  p.buffer_bytes = 64 * 64;  // 64 slots
  p.hops = 64;
  // A single-cycle permutation visits every slot exactly once per lap.
  EXPECT_EQ(latency_native(p), 64u);
  p.hops = 32;
  EXPECT_EQ(latency_native(p), 32u);
  p.hops = 200;  // wraps: still only 64 distinct slots
  EXPECT_EQ(latency_native(p), 64u);
}

TEST(LatencyParams, Validation) {
  LatencyParams p;
  p.stride_bytes = 4;
  EXPECT_THROW(p.validate(), support::Error);
  p = LatencyParams{};
  p.buffer_bytes = 64;
  p.stride_bytes = 64;
  EXPECT_THROW(p.validate(), support::Error);
  p = LatencyParams{};
  p.hops = 0;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(LatencySim, RecoversL1LatencyWhenResident) {
  // The self-validation property: an L1-resident chase measures the
  // configured L1 load-to-use latency (plus ~1 issue cycle).
  for (const auto& platform : {arch::snowball(), arch::xeon_x5550()}) {
    auto m = make(platform);
    LatencyParams p;
    p.buffer_bytes = 8 * 1024;  // comfortably inside 32 KB L1
    p.stride_bytes = 64;
    p.hops = 2048;
    const auto r = latency_run(m, p);
    const double l1 = platform.caches[0].latency_cycles;
    EXPECT_GT(r.cycles_per_hop, l1 - 1.0) << platform.name;
    EXPECT_LT(r.cycles_per_hop, l1 + 3.0) << platform.name;
  }
}

TEST(LatencySim, PlateausGrowWithBufferSize) {
  // L1 -> L2 -> DRAM: each capacity cliff raises the per-hop latency.
  const auto platform = arch::snowball();
  auto m = make(platform);
  double prev = 0.0;
  for (const std::uint64_t kb : {8ull, 128ull, 4096ull}) {
    LatencyParams p;
    p.buffer_bytes = kb * 1024;
    p.stride_bytes = 64;
    p.hops = 4096;
    const auto r = latency_run(m, p);
    EXPECT_GT(r.cycles_per_hop, prev) << kb << " KB";
    prev = r.cycles_per_hop;
  }
  // The deepest point approaches the DRAM latency in cycles.
  const double dram_cycles =
      platform.mem.latency_ns * 1e-9 * platform.core.freq_hz;
  EXPECT_GT(prev, 0.6 * dram_cycles);
}

TEST(LatencySim, L2PlateauNearConfiguredLatency) {
  const auto platform = arch::xeon_x5550();
  auto m = make(platform);
  LatencyParams p;
  p.buffer_bytes = 128 * 1024;  // beyond 32 KB L1, inside 256 KB L2... but
  p.stride_bytes = 64;          // beyond L1 only: mostly L2 hits
  p.hops = 4096;
  const auto r = latency_run(m, p);
  const double l2 = platform.caches[1].latency_cycles;
  EXPECT_GT(r.cycles_per_hop, 0.7 * l2);
  EXPECT_LT(r.cycles_per_hop, 2.5 * l2);
}

TEST(LatencySim, DramLatencyGapArmVsXeon) {
  // In nanoseconds, the embedded LP-DDR2 chase is slower than the DDR3
  // server chase — but only by the latency ratio, not the bandwidth ratio.
  LatencyParams p;
  p.buffer_bytes = 16 * 1024 * 1024;  // beyond even the Xeon L3
  p.stride_bytes = 64;
  p.hops = 4096;
  auto ma = make(arch::snowball());
  auto mx = make(arch::xeon_x5550());
  const double arm_ns = latency_run(ma, p).ns_per_hop;
  const double xeon_ns = latency_run(mx, p).ns_per_hop;
  EXPECT_GT(arm_ns, xeon_ns);
  // The latency gap (DRAM timing + TLB walks) stays well below the 20x
  // bandwidth gap of the two memory systems.
  EXPECT_LT(arm_ns / xeon_ns, 8.0);
}

}  // namespace
}  // namespace mb::kernels
