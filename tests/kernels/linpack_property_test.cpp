// Property sweeps over the LU factorization: residual, pivot sanity and
// solve accuracy must hold for every (n, block) combination, including
// non-dividing blocks and the unblocked extreme.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "kernels/linpack.h"
#include "support/rng.h"

namespace mb::kernels {
namespace {

using Case = std::tuple<std::uint32_t, std::uint32_t>;  // n, block

class LuFactorization : public ::testing::TestWithParam<Case> {};

TEST_P(LuFactorization, ResidualStaysSmall) {
  const auto [n, block] = GetParam();
  LinpackParams p;
  p.n = n;
  p.block = std::min(block, n);
  const auto r = linpack_native(p, /*seed=*/n + block);
  EXPECT_LT(r.residual, 80.0);  // units of n * ||A|| * eps
}

TEST_P(LuFactorization, PivotsAreValidRowIndices) {
  const auto [n, block] = GetParam();
  LinpackParams p;
  p.n = n;
  p.block = std::min(block, n);
  const auto r = linpack_native(p);
  ASSERT_EQ(r.pivots.size(), n);
  for (std::uint32_t j = 0; j < n; ++j) {
    EXPECT_GE(r.pivots[j], j);  // partial pivoting looks downward only
    EXPECT_LT(r.pivots[j], n);
  }
}

TEST_P(LuFactorization, SolveRecoversKnownSolution) {
  const auto [n, block] = GetParam();
  Matrix a(n, n);
  a.fill_random(3);
  const Matrix original = a;
  support::Rng rng(5);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (std::uint32_t r = 0; r < n; ++r)
    for (std::uint32_t c = 0; c < n; ++c)
      b[r] += original.at(r, c) * x_true[c];

  LinpackParams p;
  p.n = n;
  p.block = std::min(block, n);
  const auto pivots = lu_factor_inplace(a, p);
  const auto x = lu_solve(a, pivots, b);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST_P(LuFactorization, FlopCountScalesWithTheory) {
  const auto [n, block] = GetParam();
  LinpackParams p;
  p.n = n;
  p.block = std::min(block, n);
  const auto r = linpack_native(p);
  const double theory = static_cast<double>(lu_flops(n));
  // Lower-order terms matter at small n; stay within a factor.
  EXPECT_GT(static_cast<double>(r.flops), 0.7 * theory);
  EXPECT_LT(static_cast<double>(r.flops), 1.8 * theory);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, LuFactorization,
    ::testing::Combine(::testing::Values(8u, 16u, 24u, 33u, 48u, 64u),
                       ::testing::Values(1u, 4u, 8u, 32u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mb::kernels
