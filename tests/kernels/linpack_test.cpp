#include "kernels/linpack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

TEST(Matrix, IndexIsColumnMajor) {
  Matrix m(4, 3);
  EXPECT_EQ(m.index(0, 0), 0u);
  EXPECT_EQ(m.index(1, 0), 1u);
  EXPECT_EQ(m.index(0, 1), 4u);
}

TEST(Matrix, FillRandomIsDeterministic) {
  Matrix a(8, 8), b(8, 8);
  a.fill_random(5);
  b.fill_random(5);
  EXPECT_EQ(a.data(), b.data());
}

TEST(LinpackNative, ResidualIsSmall) {
  for (std::uint32_t n : {16u, 33u, 64u}) {
    LinpackParams p;
    p.n = n;
    p.block = 8;
    const auto r = linpack_native(p);
    EXPECT_LT(r.residual, 50.0) << "n=" << n;  // in units of n*||A||*eps
  }
}

TEST(LinpackNative, BlockSizeDoesNotChangeFactorization) {
  LinpackParams a, b;
  a.n = b.n = 48;
  a.block = 4;
  b.block = 48;  // unblocked
  const auto ra = linpack_native(a);
  const auto rb = linpack_native(b);
  EXPECT_EQ(ra.pivots, rb.pivots);
  EXPECT_LT(ra.residual, 50.0);
  EXPECT_LT(rb.residual, 50.0);
}

TEST(LinpackNative, FlopCountNearTheory) {
  LinpackParams p;
  p.n = 64;
  p.block = 16;
  const auto r = linpack_native(p);
  const double theory = static_cast<double>(lu_flops(p.n));
  EXPECT_NEAR(static_cast<double>(r.flops) / theory, 1.0, 0.25);
}

TEST(LinpackSolve, RecoverKnownSolution) {
  const std::uint32_t n = 32;
  Matrix a(n, n);
  a.fill_random(11);
  const Matrix original = a;
  // b = A * ones.
  std::vector<double> b(n, 0.0);
  for (std::uint32_t r = 0; r < n; ++r)
    for (std::uint32_t c = 0; c < n; ++c) b[r] += original.at(r, c);

  LinpackParams params;
  params.n = n;
  params.block = 8;
  const auto pivots = lu_factor_inplace(a, params);
  const auto x = lu_solve(a, pivots, b);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 1e-9);
}

TEST(LinpackSolve, RandomRhs) {
  const std::uint32_t n = 24;
  Matrix a(n, n);
  a.fill_random(13);
  const Matrix original = a;
  support::Rng rng(17);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (std::uint32_t r = 0; r < n; ++r)
    for (std::uint32_t c = 0; c < n; ++c)
      b[r] += original.at(r, c) * x_true[c];

  LinpackParams params;
  params.n = n;
  params.block = 6;
  const auto pivots = lu_factor_inplace(a, params);
  const auto x = lu_solve(a, pivots, b);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(LinpackParams, Validation) {
  LinpackParams p;
  p.n = 2;
  EXPECT_THROW(p.validate(), support::Error);
  p = LinpackParams{};
  p.block = 0;
  EXPECT_THROW(p.validate(), support::Error);
  p = LinpackParams{};
  p.block = p.n + 1;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(LinpackSim, SimulatedRunStillFactorsCorrectly) {
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  LinpackParams p;
  p.n = 48;
  p.block = 16;
  const auto r = linpack_run(m, p);
  EXPECT_LT(r.residual, 50.0);
  EXPECT_GT(r.mflops, 0.0);
}

TEST(LinpackSim, XeonMflopsInPaperBand) {
  // Table II: 24000 MFLOPS on the 4-core Xeon -> 6000/core. Our simulated
  // rate is per-core; accept a generous band around it.
  sim::Machine m(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  LinpackParams p;
  p.n = 96;
  p.block = 32;
  const auto r = linpack_run(m, p);
  EXPECT_GT(r.mflops, 3000.0);
  EXPECT_LT(r.mflops, 11000.0);
}

TEST(LinpackSim, SnowballMflopsInPaperBand) {
  // Table II: 620 MFLOPS on 2 cores -> 310/core.
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  LinpackParams p;
  p.n = 96;
  p.block = 32;
  const auto r = linpack_run(m, p);
  EXPECT_GT(r.mflops, 150.0);
  EXPECT_LT(r.mflops, 600.0);
}

TEST(LinpackSim, XeonToArmRatioNearPaper) {
  // Table II LINPACK ratio: 38.7x for the full machines (4 cores vs 2).
  LinpackParams p;
  p.n = 96;
  p.block = 32;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double per_core_ratio =
      linpack_run(mx, p).mflops / linpack_run(ma, p).mflops;
  const double machine_ratio = per_core_ratio * 4.0 / 2.0;
  EXPECT_GT(machine_ratio, 20.0);
  EXPECT_LT(machine_ratio, 60.0);
}

}  // namespace
}  // namespace mb::kernels
