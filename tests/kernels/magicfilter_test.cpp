#include "kernels/magicfilter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

sim::Machine make_machine(const arch::Platform& p) {
  return sim::Machine(p, sim::PagePolicy::kConsecutive, support::Rng(1));
}

TEST(MagicfilterCoefficients, InterpolatingFilterSumsToOne) {
  const auto& f = magicfilter_coefficients();
  const double sum = std::accumulate(f.begin(), f.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MagicfilterCoefficients, DominantCentralTap) {
  const auto& f = magicfilter_coefficients();
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i != 8) {
      EXPECT_LT(std::fabs(f[i]), std::fabs(f[8]));
    }
  }
}

TEST(MagicfilterAxis, ConstantFieldIsPreserved) {
  // Sum of coefficients is 1, so a constant field maps to itself.
  const std::uint32_t n = 16;
  std::vector<double> in(n * n * n, 3.25), out(in.size());
  magicfilter_axis(in, out, n, 0);
  for (double x : out) EXPECT_NEAR(x, 3.25, 1e-9);
}

TEST(MagicfilterAxis, MatchesDirectReferenceSum) {
  const std::uint32_t n = 16;
  std::vector<double> in(n * n * n), out(in.size());
  support::Rng rng(3);
  for (auto& x : in) x = rng.uniform(-1.0, 1.0);
  magicfilter_axis(in, out, n, 0);
  // Direct sum at a handful of probe points.
  const auto& f = magicfilter_coefficients();
  for (const std::uint32_t i : {0u, 5u, 15u}) {
    const std::uint32_t j = 7, k = 11;
    double expect = 0.0;
    for (std::uint32_t l = 0; l < 16; ++l) {
      const std::uint32_t src = (i + n + l - 8) % n;
      expect += f[l] * in[src + n * (j + n * k)];
    }
    EXPECT_NEAR(out[i + n * (j + n * k)], expect, 1e-12);
  }
}

TEST(MagicfilterAxis, AxesAreIndependent) {
  const std::uint32_t n = 16;
  std::vector<double> in(n * n * n, 0.0);
  in[0] = 1.0;  // delta at origin
  std::vector<double> out_x(in.size()), out_y(in.size());
  magicfilter_axis(in, out_x, n, 0);
  magicfilter_axis(in, out_y, n, 1);
  // The response spreads along different axes.
  EXPECT_NE(out_x[1], 0.0);
  EXPECT_NEAR(out_y[1], 0.0, 1e-15);
  EXPECT_NE(out_y[n], 0.0);
}

TEST(MagicfilterNative, UnrollInvariantChecksum) {
  MagicfilterParams a, b;
  a.n = b.n = 16;
  a.unroll = 1;
  b.unroll = 12;
  EXPECT_DOUBLE_EQ(magicfilter_native(a), magicfilter_native(b));
}

TEST(MagicfilterNative, NormIsFiniteAndPositive) {
  MagicfilterParams p;
  p.n = 16;
  const double norm = magicfilter_native(p);
  EXPECT_GT(norm, 0.0);
  EXPECT_TRUE(std::isfinite(norm));
}

TEST(MagicfilterParams, Validation) {
  MagicfilterParams p;
  p.n = 8;
  EXPECT_THROW(p.validate(), support::Error);
  p = MagicfilterParams{};
  p.unroll = 0;
  EXPECT_THROW(p.validate(), support::Error);
  p = MagicfilterParams{};
  p.dims = 4;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(MagicfilterSim, CacheAccessesConvexInUnroll) {
  // Fig. 7: accesses fall with moderate unroll (coefficient amortization)
  // then rise once registers spill.
  auto m = make_machine(arch::tegra2_node());
  MagicfilterParams p;
  p.n = 16;
  p.dims = 1;
  p.unroll = 1;
  const double a1 = magicfilter_run(m, p).cache_accesses_per_output;
  p.unroll = 3;
  const double a3 = magicfilter_run(m, p).cache_accesses_per_output;
  p.unroll = 12;
  const double a12 = magicfilter_run(m, p).cache_accesses_per_output;
  EXPECT_LT(a3, a1);
  EXPECT_GT(a12, a3);
}

TEST(MagicfilterSim, SpillsStartEarlierOnTegra2ThanNehalem) {
  // Fig. 7 staircase: cache accesses jump at unroll ~5 on Tegra2 but only
  // at ~9 on Nehalem.
  auto mt = make_machine(arch::tegra2_node());
  auto mx = make_machine(arch::xeon_x5550());
  MagicfilterParams p;
  p.n = 16;
  p.dims = 1;

  auto first_spill = [&](sim::Machine& m) {
    for (std::uint32_t u = 1; u <= 12; ++u) {
      p.unroll = u;
      if (magicfilter_run(m, p).spill_values > 0.0) return u;
    }
    return 99u;
  };
  const std::uint32_t tegra = first_spill(mt);
  const std::uint32_t xeon = first_spill(mx);
  EXPECT_LT(tegra, xeon);
  EXPECT_LE(tegra, 5u);
  EXPECT_GE(xeon, 6u);
}

TEST(MagicfilterSim, Tegra2SweetSpotNarrowerThanNehalem) {
  // The paper's conclusion: [4,7] on Tegra2 vs [4,12] on Nehalem.
  MagicfilterParams p;
  p.n = 16;
  p.dims = 1;

  auto sweet_spot_width = [&p](const arch::Platform& platform) {
    auto m = make_machine(platform);
    double best = 1e300;
    std::array<double, 13> cyc{};
    for (std::uint32_t u = 1; u <= 12; ++u) {
      p.unroll = u;
      cyc[u] = magicfilter_run(m, p).cycles_per_output;
      best = std::min(best, cyc[u]);
    }
    int width = 0;
    for (std::uint32_t u = 1; u <= 12; ++u)
      if (cyc[u] <= 1.10 * best) ++width;
    return width;
  };
  EXPECT_LT(sweet_spot_width(arch::tegra2_node()),
            sweet_spot_width(arch::xeon_x5550()));
}

TEST(MagicfilterSim, CyclesGrowWhenUnrollingTooMuchOnTegra2) {
  // Fig. 7b: "the total number of cycles significantly grows when
  // unrolling too much (unroll=12)".
  auto m = make_machine(arch::tegra2_node());
  MagicfilterParams p;
  p.n = 16;
  p.dims = 1;
  p.unroll = 4;
  const double at4 = magicfilter_run(m, p).cycles_per_output;
  p.unroll = 12;
  const double at12 = magicfilter_run(m, p).cycles_per_output;
  EXPECT_GT(at12, 1.15 * at4);
}

TEST(MagicfilterSim, NehalemFasterPerOutputThanTegra2) {
  MagicfilterParams p;
  p.n = 16;
  p.dims = 1;
  p.unroll = 4;
  auto mx = make_machine(arch::xeon_x5550());
  auto mt = make_machine(arch::tegra2_node());
  const double xeon_s = magicfilter_run(mx, p).sim.seconds;
  const double tegra_s = magicfilter_run(mt, p).sim.seconds;
  EXPECT_GT(tegra_s / xeon_s, 5.0);
}

TEST(MagicfilterSim, LiveValuesFormula) {
  EXPECT_DOUBLE_EQ(magicfilter_live_values(1), 8.0);
  EXPECT_DOUBLE_EQ(magicfilter_live_values(12), 19.0);
}

}  // namespace
}  // namespace mb::kernels
