// Property sweeps over the membench parameter space: physical sanity
// bounds that every (platform, size, stride, width, unroll) combination
// must satisfy.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arch/platforms.h"
#include "kernels/membench.h"

namespace mb::kernels {
namespace {

// (platform id, array KB, stride, elem bits, unroll)
using Case = std::tuple<int, std::uint64_t, std::uint32_t, std::uint32_t,
                        std::uint32_t>;

arch::Platform platform_for(int id) {
  switch (id) {
    case 0: return arch::snowball();
    case 1: return arch::xeon_x5550();
    default: return arch::tegra2_node();
  }
}

class MembenchSpace : public ::testing::TestWithParam<Case> {
 protected:
  MembenchParams params() const {
    const auto [pid, kb, stride, bits, unroll] = GetParam();
    MembenchParams p;
    p.array_bytes = kb * 1024;
    p.stride_elems = stride;
    p.elem_bits = bits;
    p.unroll = unroll;
    p.passes = 4;
    return p;
  }
  arch::Platform platform() const {
    return platform_for(std::get<0>(GetParam()));
  }
};

TEST_P(MembenchSpace, BandwidthPositiveAndBelowIssuePeak) {
  const auto plat = platform();
  sim::Machine m(plat, sim::PagePolicy::kConsecutive, support::Rng(1));
  const auto r = membench_run(m, params());
  EXPECT_GT(r.bandwidth_bytes_per_s, 0.0);
  // Hard physical ceiling: one max-width load per cycle.
  const double peak = plat.core.freq_hz * 16.0;
  EXPECT_LE(r.bandwidth_bytes_per_s, peak);
}

TEST_P(MembenchSpace, NativeChecksumFiniteAndStable) {
  const auto p = params();
  const double a = membench_native(p, 11);
  const double b = membench_native(p, 11);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::isfinite(a));
}

TEST_P(MembenchSpace, TimeScalesWithPasses) {
  const auto plat = platform();
  sim::Machine m(plat, sim::PagePolicy::kConsecutive, support::Rng(1));
  auto p = params();
  const auto r1 = membench_run(m, p);
  p.passes *= 3;
  const auto r3 = membench_run(m, p);
  // Warm caches make later passes cheaper, never more expensive.
  EXPECT_GT(r3.sim.seconds, r1.sim.seconds);
  EXPECT_LT(r3.sim.seconds, 3.5 * r1.sim.seconds);
}

TEST_P(MembenchSpace, CountersConsistent) {
  const auto plat = platform();
  sim::Machine m(plat, sim::PagePolicy::kConsecutive, support::Rng(1));
  const auto r = membench_run(m, params());
  using counters::Counter;
  const auto& c = r.sim.counters;
  EXPECT_GE(c.get(Counter::kL1Dca), c.get(Counter::kL1Dcm));
  EXPECT_GE(c.get(Counter::kTotCyc), 1u);
  EXPECT_GT(c.get(Counter::kTotIns), 0u);
  EXPECT_EQ(c.get(Counter::kFpOps),
            params().accessed_per_pass() * params().passes *
                (params().elem_bits / 32));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MembenchSpace,
    ::testing::Combine(::testing::Values(0, 1, 2),       // platform
                       ::testing::Values(8u, 48u),       // KB
                       ::testing::Values(1u, 4u),        // stride
                       ::testing::Values(32u, 64u, 128u),// elem bits
                       ::testing::Values(1u, 8u)),       // unroll
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_kb" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_e" +
             std::to_string(std::get<3>(info.param)) + "_u" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace mb::kernels
