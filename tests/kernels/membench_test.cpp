#include "kernels/membench.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

sim::Machine make_machine(const arch::Platform& p,
                          sim::PagePolicy policy = sim::PagePolicy::kConsecutive,
                          std::uint64_t seed = 1) {
  return sim::Machine(p, policy, support::Rng(seed));
}

TEST(MembenchNative, DeterministicChecksum) {
  MembenchParams params;
  params.array_bytes = 8 * 1024;
  EXPECT_DOUBLE_EQ(membench_native(params, 7), membench_native(params, 7));
  EXPECT_NE(membench_native(params, 7), membench_native(params, 8));
}

TEST(MembenchNative, UnrollDoesNotChangeTheSum) {
  MembenchParams a, b;
  a.array_bytes = b.array_bytes = 8 * 1024;
  a.unroll = 1;
  b.unroll = 8;
  EXPECT_NEAR(membench_native(a), membench_native(b), 1e-9);
}

TEST(MembenchNative, ElementWidthDoesNotChangeTheSum) {
  MembenchParams a, b;
  a.array_bytes = b.array_bytes = 8 * 1024;
  a.elem_bits = 32;
  b.elem_bits = 128;
  EXPECT_NEAR(membench_native(a), membench_native(b), 1e-9);
}

TEST(MembenchNative, StrideSkipsElements) {
  MembenchParams a, b;
  a.array_bytes = b.array_bytes = 8 * 1024;
  b.stride_elems = 2;
  EXPECT_NE(membench_native(a), membench_native(b));
}

TEST(MembenchParams, Validation) {
  MembenchParams p;
  p.elem_bits = 48;
  EXPECT_THROW(p.validate(), support::Error);
  p = MembenchParams{};
  p.stride_elems = 0;
  EXPECT_THROW(p.validate(), support::Error);
  p = MembenchParams{};
  p.array_bytes = 10;  // not a multiple of 4
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(MembenchSim, L1ResidentFasterThanL2Resident) {
  const auto platform = arch::snowball();
  auto m = make_machine(platform);
  MembenchParams small, big;
  small.array_bytes = 16 * 1024;   // fits 32K L1
  big.array_bytes = 256 * 1024;    // L2 resident
  small.unroll = big.unroll = 4;
  const auto r_small = membench_run(m, small);
  const auto r_big = membench_run(m, big);
  EXPECT_GT(r_small.bandwidth_bytes_per_s, r_big.bandwidth_bytes_per_s);
}

TEST(MembenchSim, BandwidthDropsPastL1Size) {
  // The Fig. 5a cliff: bandwidth falls once the array exceeds L1.
  const auto platform = arch::snowball();
  auto m = make_machine(platform);
  MembenchParams p;
  p.unroll = 4;
  p.array_bytes = 24 * 1024;
  const double in_l1 = membench_run(m, p).bandwidth_bytes_per_s;
  p.array_bytes = 48 * 1024;
  const double out_l1 = membench_run(m, p).bandwidth_bytes_per_s;
  EXPECT_GT(in_l1, 1.2 * out_l1);
}

TEST(MembenchSim, XeonBandwidthScalesWithElementWidth) {
  // Fig. 6a: on Nehalem both vectorizing and unrolling keep helping.
  const auto platform = arch::xeon_x5550();
  auto m = make_machine(platform);
  MembenchParams p;
  p.array_bytes = 48 * 1024;  // the paper's 50KB-class array
  p.unroll = 8;
  p.elem_bits = 32;
  const double bw32 = membench_run(m, p).bandwidth_bytes_per_s;
  p.elem_bits = 64;
  const double bw64 = membench_run(m, p).bandwidth_bytes_per_s;
  p.elem_bits = 128;
  const double bw128 = membench_run(m, p).bandwidth_bytes_per_s;
  EXPECT_GT(bw64, 1.5 * bw32);
  EXPECT_GT(bw128, 1.3 * bw64);
}

TEST(MembenchSim, XeonUnrollAlwaysHelps) {
  const auto platform = arch::xeon_x5550();
  auto m = make_machine(platform);
  for (std::uint32_t bits : {32u, 64u, 128u}) {
    MembenchParams p;
    p.array_bytes = 48 * 1024;
    p.elem_bits = bits;
    p.unroll = 1;
    const double no_unroll = membench_run(m, p).bandwidth_bytes_per_s;
    p.unroll = 8;
    const double unroll = membench_run(m, p).bandwidth_bytes_per_s;
    EXPECT_GT(unroll, no_unroll) << bits << " bits";
  }
}

TEST(MembenchSim, ArmBestConfigIs64BitUnrolled) {
  // Fig. 6b: the ARM sweet spot is 64-bit elements with unrolling.
  const auto platform = arch::snowball();
  auto m = make_machine(platform);
  double best = 0.0;
  std::uint32_t best_bits = 0;
  std::uint32_t best_unroll = 0;
  for (std::uint32_t bits : {32u, 64u, 128u}) {
    for (std::uint32_t unroll : {1u, 8u}) {
      MembenchParams p;
      p.array_bytes = 48 * 1024;
      p.elem_bits = bits;
      p.unroll = unroll;
      const double bw = membench_run(m, p).bandwidth_bytes_per_s;
      if (bw > best) {
        best = bw;
        best_bits = bits;
        best_unroll = unroll;
      }
    }
  }
  EXPECT_EQ(best_bits, 64u);
  EXPECT_EQ(best_unroll, 8u);
}

TEST(MembenchSim, ArmUnrollDetrimentalAt128Bits) {
  // Fig. 6b: 128-bit vectorized + unrolled spills NEON registers and loses
  // to the non-unrolled variant.
  const auto platform = arch::snowball();
  auto m = make_machine(platform);
  MembenchParams p;
  p.array_bytes = 48 * 1024;
  p.elem_bits = 128;
  p.unroll = 1;
  const auto no_unroll = membench_run(m, p);
  p.unroll = 8;
  const auto unroll = membench_run(m, p);
  EXPECT_GT(unroll.spill_accesses_per_elem, 0.0);
  EXPECT_DOUBLE_EQ(no_unroll.spill_accesses_per_elem, 0.0);
  EXPECT_LT(unroll.bandwidth_bytes_per_s,
            no_unroll.bandwidth_bytes_per_s);
}

TEST(MembenchSim, Arm128BitNoBetterThan32Bit) {
  // Fig. 6b: "vectorizing with 128 is similar to using 32 bit elements".
  const auto platform = arch::snowball();
  auto m = make_machine(platform);
  MembenchParams p;
  p.array_bytes = 48 * 1024;
  p.unroll = 1;
  p.elem_bits = 32;
  const double bw32 = membench_run(m, p).bandwidth_bytes_per_s;
  p.elem_bits = 128;
  const double bw128 = membench_run(m, p).bandwidth_bytes_per_s;
  EXPECT_LT(bw128, 1.5 * bw32);
  EXPECT_GT(bw128, 0.5 * bw32);
}

TEST(MembenchSim, XeonOutpacesArmAbsolute) {
  MembenchParams p;
  p.array_bytes = 48 * 1024;
  p.elem_bits = 64;
  p.unroll = 8;
  auto mx = make_machine(arch::xeon_x5550());
  auto ma = make_machine(arch::snowball());
  const double xeon = membench_run(mx, p).bandwidth_bytes_per_s;
  const double armv = membench_run(ma, p).bandwidth_bytes_per_s;
  EXPECT_GT(xeon, 3.0 * armv);
}

TEST(MembenchSim, RegisterPressureFormula) {
  MembenchParams p;
  p.elem_bits = 128;
  p.unroll = 8;
  EXPECT_DOUBLE_EQ(membench_register_pressure(p), 16.0);
  p.elem_bits = 64;
  EXPECT_DOUBLE_EQ(membench_register_pressure(p), 8.0);
  p.elem_bits = 32;
  p.unroll = 4;
  EXPECT_DOUBLE_EQ(membench_register_pressure(p), 2.0);
}

}  // namespace
}  // namespace mb::kernels
