// Move-generator correctness sweep: perft node counts against the
// canonical oracle values for the standard test positions (CPW suite).
// Any bug in move generation, legality filtering, castling, en passant or
// promotion shifts at least one of these counts.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kernels/chess/position.h"

namespace mb::kernels::chess {
namespace {

struct PerftCase {
  const char* name;
  const char* fen;
  int depth;
  std::uint64_t nodes;
};

class PerftOracle : public ::testing::TestWithParam<PerftCase> {};

TEST_P(PerftOracle, NodeCountMatches) {
  const auto& c = GetParam();
  const Position pos = Position::from_fen(c.fen);
  EXPECT_EQ(perft(pos, c.depth), c.nodes);
}

constexpr const char* kStart =
    "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -";
constexpr const char* kKiwipete =
    "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq -";
constexpr const char* kPos3 = "8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - -";
constexpr const char* kPos4 =
    "r3k2r/Pppp1ppp/1b3nbN/nP6/BBP1P3/q4N2/Pp1P2PP/R2Q1RK1 w kq -";
constexpr const char* kPos5 =
    "rnbq1k1r/pp1Pbppp/2p5/8/2B5/8/PPP1NnPP/RNBQK2R w KQ -";
constexpr const char* kPos6 =
    "r4rk1/1pp1qppp/p1np1n2/2b1p1B1/2B1P1b1/P1NP1N2/1PP1QPPP/R4RK1 w - -";

INSTANTIATE_TEST_SUITE_P(
    CpwSuite, PerftOracle,
    ::testing::Values(
        PerftCase{"start_d1", kStart, 1, 20},
        PerftCase{"start_d2", kStart, 2, 400},
        PerftCase{"start_d3", kStart, 3, 8902},
        PerftCase{"start_d4", kStart, 4, 197281},
        PerftCase{"kiwipete_d1", kKiwipete, 1, 48},
        PerftCase{"kiwipete_d2", kKiwipete, 2, 2039},
        PerftCase{"kiwipete_d3", kKiwipete, 3, 97862},
        PerftCase{"pos3_d1", kPos3, 1, 14},
        PerftCase{"pos3_d2", kPos3, 2, 191},
        PerftCase{"pos3_d3", kPos3, 3, 2812},
        PerftCase{"pos3_d4", kPos3, 4, 43238},
        PerftCase{"pos3_d5", kPos3, 5, 674624},
        PerftCase{"pos4_d1", kPos4, 1, 6},
        PerftCase{"pos4_d2", kPos4, 2, 264},
        PerftCase{"pos4_d3", kPos4, 3, 9467},
        PerftCase{"pos5_d1", kPos5, 1, 44},
        PerftCase{"pos5_d2", kPos5, 2, 1486},
        PerftCase{"pos5_d3", kPos5, 3, 62379},
        PerftCase{"pos6_d1", kPos6, 1, 46},
        PerftCase{"pos6_d2", kPos6, 2, 2079},
        PerftCase{"pos6_d3", kPos6, 3, 89890}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace mb::kernels::chess
