// Property sweep over the wave-propagation scheme: the exact discrete
// standing-wave solution must be preserved for every stable (n, cfl)
// combination — the scheme's own dispersion relation is the oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "kernels/stencil.h"

namespace mb::kernels {
namespace {

using Case = std::tuple<std::uint32_t, double, std::uint32_t>;  // n, cfl, steps

class LeapfrogScheme : public ::testing::TestWithParam<Case> {};

TEST_P(LeapfrogScheme, DiscreteDispersionHolds) {
  const auto [n, cfl, steps] = GetParam();
  StencilParams p;
  p.n = n;
  p.cfl = cfl;
  p.steps = steps;
  // Single-precision arithmetic: error grows ~sqrt(steps) * eps-scale.
  EXPECT_LT(stencil_dispersion_error(p), 2e-4 * std::sqrt(double(steps)));
}

TEST_P(LeapfrogScheme, ChecksumDeterministic) {
  const auto [n, cfl, steps] = GetParam();
  StencilParams p;
  p.n = n;
  p.cfl = cfl;
  p.steps = steps;
  EXPECT_DOUBLE_EQ(stencil_native(p, 3), stencil_native(p, 3));
}

TEST_P(LeapfrogScheme, StableSchemeDoesNotBlowUp) {
  const auto [n, cfl, steps] = GetParam();
  StencilParams p;
  p.n = n;
  p.cfl = cfl;
  p.steps = steps;
  const double norm = stencil_native(p, 5);
  EXPECT_TRUE(std::isfinite(norm));
  // Random initial data with u_prev = u: bounded evolution under a stable
  // CFL; allow modest transient growth.
  const double n3 = static_cast<double>(n) * n * n;
  EXPECT_LT(norm, 4.0 * std::sqrt(n3));  // initial RMS ~ 1/sqrt(3)
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LeapfrogScheme,
    ::testing::Combine(::testing::Values(8u, 12u, 16u),
                       ::testing::Values(0.2, 0.35, 0.5),
                       ::testing::Values(4u, 16u, 48u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_cfl" +
             std::to_string(static_cast<int>(std::get<1>(info.param) *
                                             100)) +
             "_t" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace mb::kernels
