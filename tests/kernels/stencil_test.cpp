#include "kernels/stencil.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::kernels {
namespace {

TEST(StencilStep, ConstantFieldIsFixedPoint) {
  const std::uint32_t n = 8;
  std::vector<float> prev(n * n * n, 2.5f), cur(prev), next(prev.size());
  stencil_step(prev, cur, next, n, 0.4);
  for (float x : next) EXPECT_FLOAT_EQ(x, 2.5f);
}

TEST(StencilStep, LinearityInInitialData) {
  const std::uint32_t n = 8;
  const std::uint64_t total = n * n * n;
  std::vector<float> prev(total), cur(total), a(total), b(total), sum(total);
  support::Rng rng(3);
  for (std::uint64_t i = 0; i < total; ++i) {
    prev[i] = static_cast<float>(rng.uniform(-1, 1));
    cur[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  stencil_step(prev, cur, a, n, 0.4);
  // Doubling inputs doubles outputs.
  std::vector<float> prev2(total), cur2(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    prev2[i] = 2 * prev[i];
    cur2[i] = 2 * cur[i];
  }
  stencil_step(prev2, cur2, b, n, 0.4);
  for (std::uint64_t i = 0; i < total; ++i)
    EXPECT_NEAR(b[i], 2 * a[i], 1e-4);
  (void)sum;
}

TEST(StencilDispersion, ExactDiscreteModeIsPreserved) {
  StencilParams p;
  p.n = 16;
  p.steps = 8;
  p.cfl = 0.4;
  EXPECT_LT(stencil_dispersion_error(p), 1e-4);  // SP rounding only
}

TEST(StencilDispersion, LongerRunsStayAccurate) {
  StencilParams p;
  p.n = 12;
  p.steps = 50;
  p.cfl = 0.3;
  EXPECT_LT(stencil_dispersion_error(p), 1e-3);
}

TEST(StencilNative, DeterministicChecksum) {
  StencilParams p;
  p.n = 12;
  p.steps = 3;
  EXPECT_DOUBLE_EQ(stencil_native(p, 5), stencil_native(p, 5));
  EXPECT_NE(stencil_native(p, 5), stencil_native(p, 6));
}

TEST(StencilParams, Validation) {
  StencilParams p;
  p.n = 2;
  EXPECT_THROW(p.validate(), support::Error);
  p = StencilParams{};
  p.cfl = 0.6;  // above 3-D stability limit
  EXPECT_THROW(p.validate(), support::Error);
  p = StencilParams{};
  p.steps = 0;
  EXPECT_THROW(p.validate(), support::Error);
}

TEST(StencilSim, RatesArePositive) {
  sim::Machine m(arch::snowball(), sim::PagePolicy::kConsecutive,
                 support::Rng(1));
  StencilParams p;
  p.n = 12;
  p.steps = 2;
  const auto r = stencil_run(m, p);
  EXPECT_GT(r.points_per_s, 0.0);
  EXPECT_GT(r.seconds_per_step, 0.0);
}

TEST(StencilSim, XeonToArmRatioNearPaper) {
  // Table II SPECFEM3D ratio is 7.9x machine-to-machine: single precision
  // NEON keeps the ARM competitive. Spectral-element codes are
  // element-local, so the representative working set fits L1 (n=12:
  // 3 x 6.8 KB buffers).
  StencilParams p;
  p.n = 12;
  p.steps = 20;  // amortize the cold-start fills, as a real run does
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double xeon = stencil_run(mx, p).points_per_s;
  const double arm = stencil_run(ma, p).points_per_s;
  const double machine_ratio = (xeon * 4.0) / (arm * 2.0);
  EXPECT_GT(machine_ratio, 4.0);
  EXPECT_LT(machine_ratio, 14.0);
}

TEST(StencilSim, SpGapSmallerThanDpGap) {
  // SP stencil (NEON-capable) vs DP magicfilter-style work: the SP gap per
  // core must be smaller — the paper's SPECFEM3D vs BigDFT asymmetry.
  StencilParams p;
  p.n = 12;
  p.steps = 20;
  sim::Machine mx(arch::xeon_x5550(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  sim::Machine ma(arch::snowball(), sim::PagePolicy::kConsecutive,
                  support::Rng(1));
  const double sp_gap =
      stencil_run(ma, p).sim.seconds / stencil_run(mx, p).sim.seconds;
  EXPECT_LT(sp_gap, 12.0);
}

}  // namespace
}  // namespace mb::kernels
