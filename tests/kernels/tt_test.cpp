#include "kernels/chess/tt.h"

#include <gtest/gtest.h>

#include "kernels/chess/search.h"
#include "kernels/chess/zobrist.h"
#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels::chess {
namespace {

TEST(Zobrist, KeysAreStableAndDistinct) {
  EXPECT_EQ(zobrist_piece(kWhite, kPawn, 0),
            zobrist_piece(kWhite, kPawn, 0));
  EXPECT_NE(zobrist_piece(kWhite, kPawn, 0),
            zobrist_piece(kBlack, kPawn, 0));
  EXPECT_NE(zobrist_piece(kWhite, kPawn, 0),
            zobrist_piece(kWhite, kKnight, 0));
  EXPECT_NE(zobrist_castling(0), zobrist_castling(15));
}

TEST(Zobrist, IncrementalHashMatchesRecompute) {
  // Walk random legal move sequences; the incrementally maintained hash
  // must always equal the from-scratch recomputation.
  support::Rng rng(3);
  for (int game = 0; game < 10; ++game) {
    Position pos = Position::initial();
    EXPECT_EQ(pos.hash(), pos.compute_hash());
    for (int ply = 0; ply < 30; ++ply) {
      const auto moves = pos.legal_moves();
      if (moves.empty()) break;
      pos.make(moves[rng.index(moves.size())]);
      ASSERT_EQ(pos.hash(), pos.compute_hash())
          << "game " << game << " ply " << ply;
    }
  }
}

TEST(Zobrist, TranspositionsCollide) {
  // 1. Nf3 Nf6 2. Ng1 Ng8 returns to the start position (minus nothing:
  // no castling/ep changes) -> same hash.
  Position a = Position::initial();
  for (const char* mv : {"g1f3", "g8f6", "f3g1", "f6g8"}) {
    const auto moves = a.legal_moves();
    bool made = false;
    for (const Move m : moves) {
      if (m.to_string() == mv) {
        a.make(m);
        made = true;
        break;
      }
    }
    ASSERT_TRUE(made) << mv;
  }
  EXPECT_EQ(a.hash(), Position::initial().hash());
}

TEST(Zobrist, DifferentSideToMoveDiffers) {
  const Position w = Position::from_fen("4k3/8/8/8/8/8/8/4K3 w - -");
  const Position b = Position::from_fen("4k3/8/8/8/8/8/8/4K3 b - -");
  EXPECT_NE(w.hash(), b.hash());
}

TEST(Tt, StoreAndProbe) {
  TranspositionTable tt(1 << 16);
  EXPECT_EQ(tt.probe(42), nullptr);
  tt.store(42, 123, 3, Bound::kExact, Move());
  const TtEntry* e = tt.probe(42);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->score, 123);
  EXPECT_EQ(e->depth, 3);
}

TEST(Tt, SizeRoundsToPowerOfTwo) {
  TranspositionTable tt(1000 * sizeof(TtEntry));
  EXPECT_EQ(tt.entries(), 512u);  // bit_floor(1000)
}

TEST(Tt, DepthPreferredReplacement) {
  TranspositionTable tt(sizeof(TtEntry));  // one entry
  ASSERT_EQ(tt.entries(), 1u);
  tt.store(1, 10, 5, Bound::kExact, Move());
  tt.store(2, 20, 2, Bound::kExact, Move());  // shallower: rejected
  const TtEntry* e = tt.probe(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->score, 10);
  tt.store(2, 20, 7, Bound::kExact, Move());  // deeper: replaces
  EXPECT_EQ(tt.probe(1), nullptr);
  EXPECT_NE(tt.probe(2), nullptr);
}

TEST(Tt, SameKeyAlwaysUpdates) {
  TranspositionTable tt(sizeof(TtEntry));
  tt.store(1, 10, 5, Bound::kExact, Move());
  tt.store(1, 11, 3, Bound::kLower, Move());  // same key, shallower: ok
  const TtEntry* e = tt.probe(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->score, 11);
}

TEST(Tt, ClearResetsEverything) {
  TranspositionTable tt(1 << 12);
  tt.store(1, 10, 5, Bound::kExact, Move());
  tt.probe(1);
  tt.clear();
  EXPECT_EQ(tt.probe(1), nullptr);
  EXPECT_EQ(tt.hits(), 0u);
}

TEST(SearchTt, RootScoreMatchesPlainSearch) {
  for (const char* fen :
       {"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -",
        "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq -",
        "8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - -"}) {
    const Position pos = Position::from_fen(fen);
    const auto plain = search(pos, 3);
    TranspositionTable tt(1 << 20);
    const auto with_tt = search_tt(pos, 3, tt);
    EXPECT_EQ(plain.score, with_tt.score) << fen;
  }
}

TEST(SearchTt, VisitsFewerNodesAtDepth) {
  const Position pos = Position::initial();
  const auto plain = search(pos, 4);
  TranspositionTable tt(1 << 22);
  const auto with_tt = search_tt(pos, 4, tt);
  EXPECT_LT(with_tt.stats.nodes, plain.stats.nodes);
  EXPECT_GT(tt.hits(), 0u);
}

TEST(SearchTt, WarmTableAcceleratesResearch) {
  const Position pos = Position::initial();
  TranspositionTable tt(1 << 22);
  search_tt(pos, 4, tt);
  SearchStats cold;
  // Re-search the same position: the root entry answers immediately.
  const auto again = search_tt(pos, 4, tt);
  EXPECT_LE(again.stats.nodes, 2u);
}

TEST(SearchTt, MateScoreStillFound) {
  const Position p = Position::from_fen(
      "rnbqkbnr/pppp1ppp/8/4p3/6P1/5P2/PPPPP2P/RNBQKBNR b KQkq -");
  TranspositionTable tt(1 << 16);
  const auto r = search_tt(p, 2, tt);
  EXPECT_EQ(r.best.to_string(), "d8h4");
  EXPECT_GT(r.score, 20'000);
}

TEST(Tt, TinyTableRejected) {
  EXPECT_THROW(TranspositionTable{1}, support::Error);
}

}  // namespace
}  // namespace mb::kernels::chess
