// Property sweeps over collective schedules: for every collective kind and
// every rank count, the lowered point-to-point schedule must be complete
// (every receive matched by a send) and actually executable end to end.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "mpi/runtime.h"
#include "support/check.h"
#include "net/topology.h"

namespace mb::mpi {
namespace {

enum class Coll { kBarrier, kBcast, kAllreduce, kAlltoallv, kGather, kScatter, kAllgather, kReduce };

const char* name_of(Coll c) {
  switch (c) {
    case Coll::kBarrier: return "barrier";
    case Coll::kBcast: return "bcast";
    case Coll::kAllreduce: return "allreduce";
    case Coll::kAlltoallv: return "alltoallv";
    case Coll::kGather: return "gather";
    case Coll::kScatter: return "scatter";
    case Coll::kAllgather: return "allgather";
    case Coll::kReduce: return "reduce";
  }
  return "?";
}

Op make(Coll c, std::uint32_t ranks) {
  switch (c) {
    case Coll::kBarrier: return Op::barrier();
    case Coll::kBcast: return Op::bcast(ranks / 2, 16 * 1024);
    case Coll::kAllreduce: return Op::allreduce(64 * 1024);
    case Coll::kAlltoallv:
      return Op::alltoallv(std::vector<std::uint64_t>(ranks, 4096));
    case Coll::kGather: return Op::gather(ranks / 3, 2048);
    case Coll::kScatter: return Op::scatter(ranks - 1, 2048);
    case Coll::kAllgather: return Op::allgather(4096);
    case Coll::kReduce: return Op::reduce(ranks / 2, 8192);
  }
  mb::support::fail("make", "unknown collective");
}

using Case = std::tuple<Coll, std::uint32_t>;

class CollectiveSchedule : public ::testing::TestWithParam<Case> {};

TEST_P(CollectiveSchedule, EverySendHasAMatchingRecv) {
  const auto [coll, ranks] = GetParam();
  const Op op = make(coll, ranks);
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::int32_t>, int>
      balance;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    for (const Op& o : lower_collective(op, r, ranks, 100)) {
      if (o.kind == Op::Kind::kSend) balance[{r, o.peer, o.tag}] += 1;
      if (o.kind == Op::Kind::kRecv) balance[{o.peer, r, o.tag}] -= 1;
    }
  }
  for (const auto& [key, v] : balance) EXPECT_EQ(v, 0);
}

TEST_P(CollectiveSchedule, ExecutesToCompletionOnACluster) {
  const auto [coll, ranks] = GetParam();
  sim::EventQueue queue;
  net::Network network(queue);
  const auto topo =
      net::build_tree(network, net::tibidabo_tree((ranks + 1) / 2));
  std::vector<net::NodeId> hosts;
  for (std::uint32_t r = 0; r < ranks; ++r)
    hosts.push_back(topo.hosts[r / 2]);

  trace::Trace trace;
  Runtime rt(queue, network, hosts, RuntimeConfig{}, &trace);
  Program program(ranks);
  program.append_all(make(coll, ranks));
  const double makespan = rt.run(program);
  EXPECT_GT(makespan, 0.0);
  // Every rank records the collective exactly once.
  const auto recs = trace.filter(trace::EventKind::kCollective);
  EXPECT_EQ(recs.size(), ranks);
}

TEST_P(CollectiveSchedule, BackToBackInstancesDoNotCrossMatch) {
  const auto [coll, ranks] = GetParam();
  sim::EventQueue queue;
  net::Network network(queue);
  const auto topo =
      net::build_tree(network, net::tibidabo_tree((ranks + 1) / 2));
  std::vector<net::NodeId> hosts;
  for (std::uint32_t r = 0; r < ranks; ++r)
    hosts.push_back(topo.hosts[r / 2]);

  Runtime rt(queue, network, hosts, RuntimeConfig{}, nullptr);
  Program program(ranks);
  program.append_all(make(coll, ranks));
  program.append_all(make(coll, ranks));
  program.append_all(make(coll, ranks));
  EXPECT_NO_THROW(rt.run(program));
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, CollectiveSchedule,
    ::testing::Combine(::testing::Values(Coll::kBarrier, Coll::kBcast,
                                         Coll::kAllreduce, Coll::kAlltoallv,
                                         Coll::kGather, Coll::kScatter,
                                         Coll::kAllgather, Coll::kReduce),
                       ::testing::Values(2u, 3u, 4u, 5u, 8u, 13u, 16u)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mb::mpi
