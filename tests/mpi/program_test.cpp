#include "mpi/program.h"

#include <gtest/gtest.h>

#include <map>

#include "support/check.h"

namespace mb::mpi {
namespace {

/// Executes a lowered schedule for all ranks in lockstep to verify the
/// send/recv pattern is complete and deadlock-free under buffered-send
/// semantics: every recv must have a matching send.
void verify_matching(const Op& collective, std::uint32_t ranks) {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::int32_t>, int>
      balance;  // (src, dst, tag) -> sends minus recvs
  std::size_t recvs = 0;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    for (const Op& op : lower_collective(collective, r, ranks, 1000)) {
      if (op.kind == Op::Kind::kSend)
        balance[{r, op.peer, op.tag}] += 1;
      else if (op.kind == Op::Kind::kRecv) {
        balance[{op.peer, r, op.tag}] -= 1;
        ++recvs;
      }
    }
  }
  for (const auto& [key, v] : balance)
    EXPECT_EQ(v, 0) << "unmatched message (src,dst,tag)";
  EXPECT_GT(recvs, 0u);
}

TEST(LowerCollective, BcastMatchesForVariousSizes) {
  for (std::uint32_t p : {2u, 3u, 4u, 7u, 8u, 16u, 33u}) {
    Op op = Op::bcast(0, 4096);
    verify_matching(op, p);
  }
}

TEST(LowerCollective, BcastNonZeroRoot) {
  for (std::uint32_t root : {1u, 5u}) {
    Op op = Op::bcast(root, 1024);
    verify_matching(op, 8);
  }
}

TEST(LowerCollective, BcastRootOnlySends) {
  Op op = Op::bcast(0, 1024);
  const auto ops = lower_collective(op, 0, 8, 0);
  for (const Op& o : ops) EXPECT_NE(o.kind, Op::Kind::kRecv);
}

TEST(LowerCollective, BcastLeafReceivesOnce) {
  Op op = Op::bcast(0, 1024);
  // Rank 7 of 8 is a leaf in the binomial tree.
  int recvs = 0, sends = 0;
  for (const Op& o : lower_collective(op, 7, 8, 0)) {
    if (o.kind == Op::Kind::kRecv) ++recvs;
    if (o.kind == Op::Kind::kSend) ++sends;
  }
  EXPECT_EQ(recvs, 1);
  EXPECT_EQ(sends, 0);
}

TEST(LowerCollective, BcastDepthIsLogarithmic) {
  // Total send count across ranks is p-1 (each rank receives once).
  Op op = Op::bcast(0, 64);
  const std::uint32_t p = 32;
  int sends = 0;
  for (std::uint32_t r = 0; r < p; ++r)
    for (const Op& o : lower_collective(op, r, p, 0))
      if (o.kind == Op::Kind::kSend) ++sends;
  EXPECT_EQ(sends, static_cast<int>(p) - 1);
}

TEST(LowerCollective, AllreduceMatches) {
  for (std::uint32_t p : {2u, 3u, 5u, 8u}) {
    Op op = Op::allreduce(1 << 20);
    verify_matching(op, p);
  }
}

TEST(LowerCollective, AllreduceRoundCount) {
  // Ring: 2(p-1) send/recv pairs per rank.
  Op op = Op::allreduce(4096);
  const auto ops = lower_collective(op, 0, 8, 0);
  int sends = 0;
  for (const Op& o : ops)
    if (o.kind == Op::Kind::kSend) ++sends;
  EXPECT_EQ(sends, 14);
}

TEST(LowerCollective, AlltoallvMatches) {
  for (std::uint32_t p : {2u, 4u, 9u}) {
    Op op = Op::alltoallv(std::vector<std::uint64_t>(p, 1024));
    verify_matching(op, p);
  }
}

TEST(LowerCollective, AlltoallvPostsAllSendsFirst) {
  // The MPICH shape: all sends precede all recvs (incast source).
  Op op = Op::alltoallv(std::vector<std::uint64_t>(8, 512));
  const auto ops = lower_collective(op, 3, 8, 0);
  bool seen_recv = false;
  for (const Op& o : ops) {
    if (o.kind == Op::Kind::kRecv) seen_recv = true;
    if (o.kind == Op::Kind::kSend) {
      EXPECT_FALSE(seen_recv);
    }
  }
}

TEST(LowerCollective, AlltoallvCountsSizeChecked) {
  Op op = Op::alltoallv(std::vector<std::uint64_t>(4, 1));
  EXPECT_THROW(lower_collective(op, 0, 8, 0), support::Error);
}

TEST(LowerCollective, BarrierMatches) {
  for (std::uint32_t p : {2u, 3u, 8u, 13u}) verify_matching(Op::barrier(), p);
}

TEST(LowerCollective, GroupMarkersWrapSchedule) {
  Op op = Op::bcast(0, 64);
  const auto ops = lower_collective(op, 1, 4, 0);
  ASSERT_GE(ops.size(), 2u);
  EXPECT_EQ(ops.front().kind, Op::Kind::kBeginGroup);
  EXPECT_EQ(ops.back().kind, Op::Kind::kEndGroup);
  EXPECT_EQ(ops.front().label, "bcast");
}

TEST(LowerCollective, NonCollectiveRejected) {
  EXPECT_THROW(lower_collective(Op::compute(1.0), 0, 4, 0), support::Error);
}

TEST(Program, AppendAllBroadcastsOp) {
  Program p(4);
  p.append_all(Op::barrier());
  for (std::uint32_t r = 0; r < 4; ++r) {
    ASSERT_EQ(p.rank(r).size(), 1u);
    EXPECT_EQ(p.rank(r)[0].kind, Op::Kind::kBarrier);
  }
}

TEST(Program, NeedsAtLeastOneRank) {
  EXPECT_THROW(Program{0}, support::Error);
}

}  // namespace
}  // namespace mb::mpi
