#include "mpi/runtime.h"

#include <string>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/units.h"

namespace mb::mpi {
namespace {

struct Harness {
  sim::EventQueue queue;
  net::Network network{queue};
  net::ClusterTopology topo;
  trace::Trace trace;

  explicit Harness(std::uint32_t nodes) {
    net::TreeParams params = net::tibidabo_tree(nodes);
    topo = net::build_tree(network, params);
  }

  double run(const Program& program, std::uint32_t ranks_per_node = 1) {
    std::vector<net::NodeId> rank_to_host;
    for (std::uint32_t r = 0; r < program.ranks(); ++r)
      rank_to_host.push_back(topo.hosts[r / ranks_per_node]);
    Runtime rt(queue, network, rank_to_host, RuntimeConfig{}, &trace);
    return rt.run(program);
  }
};

TEST(Runtime, ComputeOnlyMakespanIsMaxOverRanks) {
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::compute(1.0));
  p.rank(1).push_back(Op::compute(2.5));
  EXPECT_NEAR(h.run(p), 2.5, 1e-12);
}

TEST(Runtime, SendRecvTransfersAcrossNetwork) {
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 1 << 20, 7));
  p.rank(1).push_back(Op::recv(0, 7));
  const double makespan = h.run(p);
  // 1 MB at 0.7 Gb/s host links (~87.5 MB/s): ~12 ms with frames
  // pipelining across the two hops.
  EXPECT_GT(makespan, 0.01);
  EXPECT_LT(makespan, 0.1);
}

TEST(Runtime, RecvBeforeSendStillCompletes) {
  Harness h(2);
  Program p(2);
  p.rank(1).push_back(Op::recv(0, 3));
  p.rank(0).push_back(Op::compute(0.1));
  p.rank(0).push_back(Op::send(1, 100, 3));
  EXPECT_GT(h.run(p), 0.1);
}

TEST(Runtime, IntraNodeMessagesBypassNetwork) {
  Harness h(1);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 1 << 20, 1));
  p.rank(1).push_back(Op::recv(0, 1));
  const double makespan = h.run(p, /*ranks_per_node=*/2);
  // Memory-speed transfer: well under a millisecond for 1 MB.
  EXPECT_LT(makespan, 2e-3);
}

TEST(Runtime, MessageOrderingFifoPerKey) {
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 100, 5));
  p.rank(0).push_back(Op::send(1, 100, 5));
  p.rank(1).push_back(Op::recv(0, 5));
  p.rank(1).push_back(Op::recv(0, 5));
  EXPECT_NO_THROW(h.run(p));
}

TEST(Runtime, TagMismatchDeadlocks) {
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 100, 1));
  p.rank(1).push_back(Op::recv(0, 2));  // wrong tag
  EXPECT_THROW(h.run(p), support::Error);
}

TEST(Runtime, VerifierNamesTheFailureBeforeExecution) {
  // With verification on (the default), the pre-run pass replaces the
  // opaque end-of-simulation deadlock failure with a diagnostic naming
  // the rule and the blocked (rank, op).
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 100, 1));
  p.rank(1).push_back(Op::recv(0, 2));  // wrong tag
  try {
    h.run(p);
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("MPI002"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1 op 0"), std::string::npos) << what;
  }
}

TEST(Runtime, VerifyOptOutFallsBackToRuntimeDeadlockCheck) {
  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::send(1, 100, 1));
  p.rank(1).push_back(Op::recv(0, 2));  // wrong tag
  std::vector<net::NodeId> hosts{h.topo.hosts[0], h.topo.hosts[1]};
  RuntimeConfig config;
  config.verify = false;
  Runtime rt(h.queue, h.network, hosts, config, nullptr);
  try {
    rt.run(p);
    FAIL() << "expected support::Error";
  } catch (const support::Error& e) {
    // The event loop drains and only then reports — no rule id available.
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_EQ(what.find("MPI002"), std::string::npos) << what;
  }
}

TEST(Runtime, BarrierSynchronizesRanks) {
  Harness h(4);
  Program p(4);
  for (std::uint32_t r = 0; r < 4; ++r)
    p.rank(r).push_back(Op::compute(0.1 * (r + 1)));
  p.append_all(Op::barrier());
  p.append_all(Op::compute(0.05));
  const double makespan = h.run(p);
  // Slowest pre-barrier rank: 0.4; then barrier + 0.05.
  EXPECT_GT(makespan, 0.45);
  EXPECT_LT(makespan, 0.6);
}

TEST(Runtime, BcastDeliversToAllRanks) {
  Harness h(8);
  Program p(8);
  p.append_all(Op::bcast(2, 64 * 1024));
  EXPECT_NO_THROW(h.run(p));
  // Every rank but the root recorded the collective.
  const auto recs = h.trace.filter(trace::EventKind::kCollective, "bcast");
  EXPECT_EQ(recs.size(), 8u);
}

TEST(Runtime, AllreduceCompletes) {
  Harness h(6);
  Program p(6);
  p.append_all(Op::allreduce(1 << 16));
  EXPECT_NO_THROW(h.run(p));
}

TEST(Runtime, AlltoallvCompletesAndTraces) {
  Harness h(6);
  Program p(6);
  p.append_all(Op::alltoallv(std::vector<std::uint64_t>(6, 32 * 1024)));
  EXPECT_NO_THROW(h.run(p));
  EXPECT_EQ(h.trace.filter(trace::EventKind::kCollective, "alltoallv").size(),
            6u);
}

TEST(Runtime, CollectiveOrderingRequirementHolds) {
  // Two consecutive collectives must not cross-match tags.
  Harness h(4);
  Program p(4);
  p.append_all(Op::allreduce(1024));
  p.append_all(Op::allreduce(1024));
  p.append_all(Op::bcast(0, 2048));
  EXPECT_NO_THROW(h.run(p));
}

TEST(Runtime, ComputeIsTraced) {
  Harness h(2);
  Program p(2);
  p.append_all(Op::compute(0.5, "work"));
  h.run(p);
  const auto recs = h.trace.filter(trace::EventKind::kCompute, "work");
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_NEAR(recs[0].duration(), 0.5, 1e-12);
}

TEST(Runtime, PublishesTrafficAndTimeMetrics) {
  // The runtime feeds the global registry; start from a pristine one so
  // other tests' runs in this process don't interfere.
  obs::Registry& registry = obs::metrics();
  registry.reset_for_test();

  Harness h(2);
  Program p(2);
  p.rank(0).push_back(Op::compute(0.1));
  p.rank(0).push_back(Op::send(1, 1 << 16, 7));
  p.rank(1).push_back(Op::recv(0, 7));  // posted early: rank 1 waits
  h.run(p);

  EXPECT_DOUBLE_EQ(
      registry.counter("mpi.bytes_sent", {{"rank", "0"}}).value(),
      static_cast<double>(1 << 16));
  EXPECT_DOUBLE_EQ(
      registry.counter("mpi.bytes_received", {{"rank", "1"}}).value(),
      static_cast<double>(1 << 16));
  EXPECT_GT(registry.counter("mpi.time_s", {{"kind", "p2p"}}).value(), 0.0);
  // Rank 1 blocked from t=0 until the message landed after rank 0's
  // 0.1 s compute: at least that much wait time was accounted.
  EXPECT_GT(registry.counter("mpi.time_s", {{"kind", "wait"}}).value(), 0.1);
  EXPECT_DOUBLE_EQ(
      registry.counter("mpi.time_s", {{"kind", "collective"}}).value(), 0.0);
}

TEST(Runtime, CollectiveTimeAccountedToCollectiveCounter) {
  obs::Registry& registry = obs::metrics();
  registry.reset_for_test();
  Harness h(2);
  Program p(2);
  for (std::uint32_t r = 0; r < 2; ++r)
    p.rank(r).push_back(Op::alltoallv({1 << 16, 1 << 16}));
  h.run(p);
  EXPECT_GT(
      registry.counter("mpi.time_s", {{"kind", "collective"}}).value(), 0.0);
}

TEST(Runtime, CrashedPeerYieldsStructuredFailureReport) {
  Harness h(2);
  std::vector<net::NodeId> hosts{h.topo.hosts[0], h.topo.hosts[1]};
  RuntimeConfig config;
  config.recv_timeout_s = 0.5;
  Runtime rt(h.queue, h.network, hosts, config, nullptr);
  Program p(2);
  p.rank(0).push_back(Op::recv(1, 5));
  p.rank(1).push_back(Op::compute(0.2));
  p.rank(1).push_back(Op::send(0, 1000, 5));
  h.queue.schedule_in(0.1, [&] { rt.crash_rank(1); });

  const RunOutcome outcome = rt.run_outcome(p);
  EXPECT_FALSE(outcome.completed);
  ASSERT_EQ(outcome.failure.dead_ranks.size(), 1u);
  EXPECT_EQ(outcome.failure.dead_ranks[0], 1u);
  // Rank 0 blocked at t=0 on recv(peer=1, tag=5); the detector declares
  // it dead at wait_start + recv_timeout.
  ASSERT_EQ(outcome.failure.blocked.size(), 1u);
  EXPECT_EQ(outcome.failure.blocked[0].rank, 0u);
  EXPECT_EQ(outcome.failure.blocked[0].peer, 1u);
  EXPECT_EQ(outcome.failure.blocked[0].tag, 5);
  EXPECT_TRUE(outcome.failure.blocked[0].timed_out);
  EXPECT_NEAR(outcome.failure.detected_s, 0.5, 1e-9);
  // The throwing entry point renders the same report.
  const std::string rendered = outcome.failure.to_string();
  EXPECT_NE(rendered.find("dead ranks: 1"), std::string::npos);
  EXPECT_NE(rendered.find("rank 0 blocked on recv(peer=1"),
            std::string::npos);
}

TEST(Runtime, SendRetryRecoversFromTransientOutage) {
  Harness h(2);
  std::vector<net::NodeId> hosts{h.topo.hosts[0], h.topo.hosts[1]};
  RuntimeConfig config;
  config.max_send_retries = 3;
  config.send_retry_base_s = 5.0;
  obs::metrics().reset_for_test();
  Runtime rt(h.queue, h.network, hosts, config, nullptr);

  // The host link is down long enough for the network to exhaust its
  // per-frame retransmit budget and abandon the message; the runtime's
  // send retry re-posts it once the link is back.
  h.network.set_link_state(h.topo.hosts[0], h.topo.leaf_switches[0], false);
  h.queue.schedule_in(60.0, [&] {
    h.network.set_link_state(h.topo.hosts[0], h.topo.leaf_switches[0],
                             true);
  });
  Program p(2);
  p.rank(0).push_back(Op::send(1, 1000, 9));
  p.rank(1).push_back(Op::recv(0, 9));

  const RunOutcome outcome = rt.run_outcome(p);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.makespan_s, 60.0);  // waited out the outage
  EXPECT_GE(obs::metrics().counter("mpi.retries").value(), 1.0);
}

TEST(Runtime, SlowdownStretchesSubsequentCompute) {
  Harness h(2);
  std::vector<net::NodeId> hosts{h.topo.hosts[0], h.topo.hosts[1]};
  Runtime rt(h.queue, h.network, hosts, RuntimeConfig{}, nullptr);
  Program p(2);
  p.rank(0).push_back(Op::compute(0.1));
  p.rank(0).push_back(Op::compute(1.0));
  // Fires between the two ops: only the second is stretched (Fig. 5
  // degraded mode, ~5x slower).
  h.queue.schedule_in(0.05, [&] { rt.set_rank_slowdown(0, 5.0); });

  EXPECT_NEAR(rt.run(p), 0.1 + 5.0, 1e-9);
  EXPECT_THROW(rt.set_rank_slowdown(0, 0.5), support::Error);  // < 1
  EXPECT_THROW(rt.set_rank_slowdown(99, 2.0), support::Error);
}

TEST(Runtime, RanksMismatchRejected) {
  Harness h(2);
  Program p(3);
  std::vector<net::NodeId> hosts{h.topo.hosts[0], h.topo.hosts[1]};
  Runtime rt(h.queue, h.network, hosts, RuntimeConfig{}, nullptr);
  EXPECT_THROW(rt.run(p), support::Error);
}

TEST(Runtime, RankOnSwitchRejected) {
  Harness h(2);
  std::vector<net::NodeId> hosts{h.topo.root_switch};
  EXPECT_THROW(Runtime(h.queue, h.network, hosts, RuntimeConfig{}, nullptr),
               support::Error);
}

}  // namespace
}  // namespace mb::mpi
