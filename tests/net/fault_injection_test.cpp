// Fault injection: degraded links and their effect on point-to-point and
// collective communication (the straggler pathology of real clusters).
#include <gtest/gtest.h>

#include "mpi/runtime.h"
#include "net/topology.h"
#include "support/check.h"

namespace mb::net {
namespace {

struct Cluster {
  sim::EventQueue queue;
  Network net{queue};
  ClusterTopology topo;

  explicit Cluster(std::uint32_t nodes) {
    topo = build_tree(net, tibidabo_tree(nodes));
  }
};

TEST(FaultInjection, DegradedLinkSlowsItsFlows) {
  auto healthy_time = [] {
    Cluster c(4);
    double t = -1;
    c.net.send(c.topo.hosts[0], c.topo.hosts[1], 1 << 20,
               [&] { t = c.queue.now(); });
    c.queue.run();
    return t;
  }();

  Cluster c(4);
  c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.1, 1e-3);
  double t = -1;
  c.net.send(c.topo.hosts[0], c.topo.hosts[1], 1 << 20,
             [&] { t = c.queue.now(); });
  c.queue.run();
  EXPECT_GT(t, 5.0 * healthy_time);
}

TEST(FaultInjection, OtherFlowsUnaffected) {
  Cluster c(4);
  c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.1, 1e-3);
  double t = -1;
  c.net.send(c.topo.hosts[2], c.topo.hosts[3], 1 << 20,
             [&] { t = c.queue.now(); });
  c.queue.run();
  EXPECT_LT(t, 0.1);  // the healthy pair still runs at full speed
}

TEST(FaultInjection, StragglerStallsTheWholeCollective) {
  auto makespan_with = [](bool degrade) {
    Cluster c(8);
    if (degrade)
      c.net.degrade_link(c.topo.hosts[5], c.topo.leaf_switches[0], 0.05,
                         2e-3);
    std::vector<NodeId> hosts;
    for (std::uint32_t r = 0; r < 16; ++r)
      hosts.push_back(c.topo.hosts[r / 2]);
    mpi::Runtime rt(c.queue, c.net, hosts, mpi::RuntimeConfig{}, nullptr);
    mpi::Program prog(16);
    prog.append_all(mpi::Op::allreduce(1 << 20));
    return rt.run(prog);
  };
  // One bad NIC out of eight stalls the allreduce for everyone: the
  // collective is only as fast as its slowest participant.
  EXPECT_GT(makespan_with(true), 3.0 * makespan_with(false));
}

TEST(FaultInjection, DownedLinkBlocksUntilRestored) {
  Cluster c(4);
  const NodeId host = c.topo.hosts[0];
  const NodeId leaf = c.topo.leaf_switches[0];
  c.net.set_link_state(host, leaf, false);
  c.queue.schedule_in(1.0,
                      [&] { c.net.set_link_state(host, leaf, true); });
  double t = -1;
  c.net.send(host, c.topo.hosts[1], 100, [&] { t = c.queue.now(); });
  c.queue.run();
  // The frame sat out the outage on retransmit timers; it cannot have
  // arrived before the link came back.
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 5.0);  // ... but the capped backoff retries promptly
  EXPECT_GT(c.net.link_stats(host, leaf).down_drops, 0u);
  EXPECT_GT(c.net.link_stats(host, leaf).retransmits, 0u);
}

TEST(FaultInjection, RetransmitBackoffIsExponential) {
  // Outage of 0.5 s: the Tibidabo links retry on a 25 ms base RTO with
  // backoff 2, so the retries land at 0.025 * (1+2+4+8+16) cumulative —
  // 0.025, 0.075, 0.175, 0.375 (all still down) and 0.775 (up). Delivery
  // happens right after 0.775, on the fifth retransmit.
  Cluster c(2);
  const NodeId host = c.topo.hosts[0];
  const NodeId leaf = c.topo.leaf_switches[0];
  c.net.set_link_state(host, leaf, false);
  c.queue.schedule_in(0.5,
                      [&] { c.net.set_link_state(host, leaf, true); });
  double t = -1;
  c.net.send(host, c.topo.hosts[1], 100, [&] { t = c.queue.now(); });
  c.queue.run();
  EXPECT_GT(t, 0.775);
  EXPECT_LT(t, 0.85);
  EXPECT_EQ(c.net.link_stats(host, leaf).retransmits, 5u);
}

TEST(FaultInjection, PermanentOutageGivesUpAndReportsFailure) {
  Cluster c(2);
  const NodeId host = c.topo.hosts[0];
  const NodeId leaf = c.topo.leaf_switches[0];
  c.net.set_link_state(host, leaf, false);
  bool delivered = false;
  int failures = 0;
  c.net.send(host, c.topo.hosts[1], 100, [&] { delivered = true; },
             [&] { ++failures; });
  c.queue.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(failures, 1);  // on_failed fires exactly once
  EXPECT_GT(c.net.link_stats(host, leaf).gave_up, 0u);
}

TEST(FaultInjection, InjectedLossStillDeliversEverything) {
  Cluster c(2);
  const NodeId host = c.topo.hosts[0];
  const NodeId leaf = c.topo.leaf_switches[0];
  c.net.set_link_loss(host, leaf, 0.3, 42);
  int delivered = 0;
  const int messages = 50;
  for (int m = 0; m < messages; ++m)
    c.net.send(host, c.topo.hosts[1], 4000, [&] { ++delivered; });
  c.queue.run();
  EXPECT_EQ(delivered, messages);  // retransmission hides the loss
  const auto& stats = c.net.link_stats(host, leaf);
  EXPECT_GT(stats.injected_losses, 0u);
  EXPECT_GE(stats.retransmits, stats.injected_losses);
}

TEST(FaultInjection, LinkStateQueryAndValidation) {
  Cluster c(2);
  const NodeId host = c.topo.hosts[0];
  const NodeId leaf = c.topo.leaf_switches[0];
  EXPECT_TRUE(c.net.link_up(host, leaf));
  c.net.set_link_state(host, leaf, false);
  EXPECT_FALSE(c.net.link_up(host, leaf));
  EXPECT_FALSE(c.net.link_up(leaf, host));  // both directions go down
  c.net.set_link_state(host, leaf, true);
  EXPECT_TRUE(c.net.link_up(host, leaf));
  // Loss probability 1 would retransmit forever.
  EXPECT_THROW(c.net.set_link_loss(host, leaf, 1.0, 1), support::Error);
  EXPECT_THROW(c.net.set_link_loss(host, leaf, -0.1, 1), support::Error);
}

TEST(FaultInjection, Preconditions) {
  Cluster c(2);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.0, 0),
      support::Error);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 1.5, 0),
      support::Error);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.hosts[1], 1.0, 0),
      support::Error);  // not directly connected
}

}  // namespace
}  // namespace mb::net
