// Fault injection: degraded links and their effect on point-to-point and
// collective communication (the straggler pathology of real clusters).
#include <gtest/gtest.h>

#include "mpi/runtime.h"
#include "net/topology.h"
#include "support/check.h"

namespace mb::net {
namespace {

struct Cluster {
  sim::EventQueue queue;
  Network net{queue};
  ClusterTopology topo;

  explicit Cluster(std::uint32_t nodes) {
    topo = build_tree(net, tibidabo_tree(nodes));
  }
};

TEST(FaultInjection, DegradedLinkSlowsItsFlows) {
  auto healthy_time = [] {
    Cluster c(4);
    double t = -1;
    c.net.send(c.topo.hosts[0], c.topo.hosts[1], 1 << 20,
               [&] { t = c.queue.now(); });
    c.queue.run();
    return t;
  }();

  Cluster c(4);
  c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.1, 1e-3);
  double t = -1;
  c.net.send(c.topo.hosts[0], c.topo.hosts[1], 1 << 20,
             [&] { t = c.queue.now(); });
  c.queue.run();
  EXPECT_GT(t, 5.0 * healthy_time);
}

TEST(FaultInjection, OtherFlowsUnaffected) {
  Cluster c(4);
  c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.1, 1e-3);
  double t = -1;
  c.net.send(c.topo.hosts[2], c.topo.hosts[3], 1 << 20,
             [&] { t = c.queue.now(); });
  c.queue.run();
  EXPECT_LT(t, 0.1);  // the healthy pair still runs at full speed
}

TEST(FaultInjection, StragglerStallsTheWholeCollective) {
  auto makespan_with = [](bool degrade) {
    Cluster c(8);
    if (degrade)
      c.net.degrade_link(c.topo.hosts[5], c.topo.leaf_switches[0], 0.05,
                         2e-3);
    std::vector<NodeId> hosts;
    for (std::uint32_t r = 0; r < 16; ++r)
      hosts.push_back(c.topo.hosts[r / 2]);
    mpi::Runtime rt(c.queue, c.net, hosts, mpi::RuntimeConfig{}, nullptr);
    mpi::Program prog(16);
    prog.append_all(mpi::Op::allreduce(1 << 20));
    return rt.run(prog);
  };
  // One bad NIC out of eight stalls the allreduce for everyone: the
  // collective is only as fast as its slowest participant.
  EXPECT_GT(makespan_with(true), 3.0 * makespan_with(false));
}

TEST(FaultInjection, Preconditions) {
  Cluster c(2);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 0.0, 0),
      support::Error);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.leaf_switches[0], 1.5, 0),
      support::Error);
  EXPECT_THROW(
      c.net.degrade_link(c.topo.hosts[0], c.topo.hosts[1], 1.0, 0),
      support::Error);  // not directly connected
}

}  // namespace
}  // namespace mb::net
