// Property sweeps over the network simulator: message conservation and
// timing sanity under randomized traffic on every topology size.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "support/rng.h"

namespace mb::net {
namespace {

class TopologySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologySweep, EveryMessageDeliveredExactlyOnce) {
  const std::uint32_t nodes = GetParam();
  sim::EventQueue queue;
  Network net(queue);
  const auto topo = build_tree(net, tibidabo_tree(nodes));

  support::Rng rng(nodes);
  const int messages = 200;
  int delivered = 0;
  for (int m = 0; m < messages; ++m) {
    const NodeId src = topo.hosts[rng.index(nodes)];
    NodeId dst = topo.hosts[rng.index(nodes)];
    const std::uint64_t bytes = rng.uniform_u64(0, 64 * 1024);
    net.send(src, dst, bytes, [&delivered] { ++delivered; });
  }
  queue.run();
  EXPECT_EQ(delivered, messages);
}

TEST_P(TopologySweep, RoutesAreSymmetricInHops) {
  const std::uint32_t nodes = GetParam();
  sim::EventQueue queue;
  Network net(queue);
  const auto topo = build_tree(net, tibidabo_tree(nodes));
  support::Rng rng(nodes * 7);
  for (int i = 0; i < 50; ++i) {
    const NodeId a = topo.hosts[rng.index(nodes)];
    const NodeId b = topo.hosts[rng.index(nodes)];
    EXPECT_EQ(net.route_hops(a, b), net.route_hops(b, a));
    if (a != b) {
      EXPECT_GE(net.route_hops(a, b), 2u);  // at least host-switch-host
      EXPECT_LE(net.route_hops(a, b), 4u);  // two-level tree bound
    }
  }
}

TEST_P(TopologySweep, LargerMessagesNeverArriveEarlier) {
  const std::uint32_t nodes = GetParam();
  if (nodes < 2) return;
  // On an otherwise idle network, delivery time is monotone in size.
  double prev = 0.0;
  for (const std::uint64_t bytes : {1024ull, 64ull * 1024, 1ull << 20}) {
    sim::EventQueue queue;
    Network net(queue);
    const auto topo = build_tree(net, tibidabo_tree(nodes));
    double t = -1;
    net.send(topo.hosts[0], topo.hosts[nodes - 1], bytes,
             [&] { t = queue.now(); });
    queue.run();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(TopologySweep, LinkStatsConserveBytes) {
  const std::uint32_t nodes = GetParam();
  if (nodes < 2) return;
  sim::EventQueue queue;
  Network net(queue);
  const auto topo = build_tree(net, tibidabo_tree(nodes));
  const std::uint64_t bytes = 100 * 1000;
  int done = 0;
  net.send(topo.hosts[0], topo.hosts[1], bytes, [&] { ++done; });
  queue.run();
  // First hop carries every payload byte exactly once (no drops expected
  // for a single flow).
  const auto& s = net.link_stats(topo.hosts[0], topo.leaf_switches[0]);
  EXPECT_EQ(s.bytes, bytes);
  EXPECT_EQ(s.drops, 0u);
}

TEST_P(TopologySweep, ByteConservationUnderLoss) {
  const std::uint32_t nodes = GetParam();
  if (nodes < 2) return;
  sim::EventQueue queue;
  Network net(queue);
  const auto topo = build_tree(net, tibidabo_tree(nodes));

  // Every host link is lossy; retransmission must still deliver every
  // message exactly once, with every payload byte intact.
  const net::TreeParams params = tibidabo_tree(nodes);
  auto leaf_of = [&](std::uint32_t n) {
    return topo.leaf_switches[n / params.switch_ports];
  };
  support::Rng rng(nodes * 13 + 1);
  for (std::uint32_t n = 0; n < nodes; ++n)
    net.set_link_loss(topo.hosts[n], leaf_of(n), 0.1, 1000 + n);

  const int messages = 100;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  int delivered = 0;
  for (int m = 0; m < messages; ++m) {
    const NodeId src = topo.hosts[rng.index(nodes)];
    const NodeId dst = topo.hosts[rng.index(nodes)];
    const std::uint64_t bytes = rng.uniform_u64(1, 16 * 1024);
    bytes_sent += bytes;
    net.send(src, dst, bytes, [&delivered, &bytes_delivered, bytes] {
      ++delivered;
      bytes_delivered += bytes;
    });
  }
  queue.run();
  EXPECT_EQ(delivered, messages);
  EXPECT_EQ(bytes_delivered, bytes_sent);

  // The loss actually bit: at 10% per frame, some injected losses (and a
  // matching or larger number of retransmits) must have occurred.
  std::uint64_t losses = 0;
  std::uint64_t retransmits = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeId leaf = leaf_of(n);
    losses += net.link_stats(topo.hosts[n], leaf).injected_losses;
    losses += net.link_stats(leaf, topo.hosts[n]).injected_losses;
    retransmits += net.link_stats(topo.hosts[n], leaf).retransmits;
    retransmits += net.link_stats(leaf, topo.hosts[n]).retransmits;
  }
  EXPECT_GT(losses, 0u);
  EXPECT_GE(retransmits, losses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 48u, 49u, 100u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mb::net
