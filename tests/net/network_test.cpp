#include "net/network.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/units.h"

namespace mb::net {
namespace {

LinkSpec gig() {
  LinkSpec l;
  l.bandwidth_bytes_per_s = support::bits_to_bytes_per_s(1e9);
  l.latency_s = 10e-6;
  return l;
}

struct Fixture {
  sim::EventQueue queue;
  Network net{queue};
};

TEST(Network, SingleLinkLatencyAndBandwidth) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, b, gig());
  f.net.finalize_routes();

  double delivered = -1;
  f.net.send(a, b, 1000, [&] { delivered = f.queue.now(); });
  f.queue.run();
  // One frame: (1000+38 overhead bytes) / 125e6 B/s + 10us latency.
  EXPECT_NEAR(delivered, 1038.0 / 125e6 + 10e-6, 1e-9);
}

TEST(Network, MultiFrameMessagePipelines) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, b, gig());
  f.net.finalize_routes();

  double delivered = -1;
  const std::uint64_t bytes = 10 * Network::kMtuBytes;
  f.net.send(a, b, bytes, [&] { delivered = f.queue.now(); });
  f.queue.run();
  // Frames serialize on the link: ~10 frame times + one latency.
  const double frame_t = (1500.0 + 38) / 125e6;
  EXPECT_NEAR(delivered, 10 * frame_t + 10e-6, frame_t * 0.2);
}

TEST(Network, TwoHopStoreAndForward) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  const NodeId sw = f.net.add_node("sw", true);
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, sw, gig());
  f.net.add_link(sw, b, gig());
  f.net.finalize_routes();
  EXPECT_EQ(f.net.route_hops(a, b), 2u);

  double delivered = -1;
  f.net.send(a, b, 100, [&] { delivered = f.queue.now(); });
  f.queue.run();
  const double frame_t = 138.0 / 125e6;
  EXPECT_NEAR(delivered, 2 * frame_t + 2 * 10e-6, 1e-9);
}

TEST(Network, OutputPortContentionSerializes) {
  // Two senders to one receiver: the receiver's link serializes.
  Fixture f;
  const NodeId s1 = f.net.add_node("s1", false);
  const NodeId s2 = f.net.add_node("s2", false);
  const NodeId sw = f.net.add_node("sw", true);
  const NodeId d = f.net.add_node("d", false);
  for (NodeId n : {s1, s2}) f.net.add_link(n, sw, gig());
  f.net.add_link(sw, d, gig());
  f.net.finalize_routes();

  const std::uint64_t bytes = 100 * Network::kMtuBytes;
  double t1 = -1, t2 = -1;
  f.net.send(s1, d, bytes, [&] { t1 = f.queue.now(); });
  f.net.send(s2, d, bytes, [&] { t2 = f.queue.now(); });
  f.queue.run();

  // Compare with a single flow of the same size.
  Fixture g;
  const NodeId a = g.net.add_node("a", false);
  const NodeId gsw = g.net.add_node("sw", true);
  const NodeId b = g.net.add_node("b", false);
  g.net.add_link(a, gsw, gig());
  g.net.add_link(gsw, b, gig());
  g.net.finalize_routes();
  double solo = -1;
  g.net.send(a, b, bytes, [&] { solo = g.queue.now(); });
  g.queue.run();

  EXPECT_GT(std::max(t1, t2), 1.8 * solo);
  const auto& stats = f.net.link_stats(sw, d);
  EXPECT_GT(stats.queued_s, 0.0);
}

TEST(Network, BufferOverflowDropsAndRetransmits) {
  Fixture f;
  const NodeId s1 = f.net.add_node("s1", false);
  const NodeId s2 = f.net.add_node("s2", false);
  const NodeId sw = f.net.add_node("sw", true);
  const NodeId d = f.net.add_node("d", false);
  LinkSpec host = gig();
  for (NodeId n : {s1, s2}) f.net.add_link(n, sw, host);
  LinkSpec tiny = gig();
  tiny.buffer_bytes = 8 * 1024;  // overflows quickly
  tiny.retransmit_timeout_s = 0.01;
  f.net.add_link(sw, d, tiny);
  f.net.finalize_routes();

  const std::uint64_t bytes = 200 * Network::kMtuBytes;
  int done = 0;
  f.net.send(s1, d, bytes, [&] { ++done; });
  f.net.send(s2, d, bytes, [&] { ++done; });
  const double end = f.queue.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(f.net.link_stats(sw, d).drops, 0u);
  EXPECT_GT(end, 0.01);  // at least one retransmit timeout elapsed
}

TEST(Network, NoDropsWithDeepBuffers) {
  Fixture f;
  const NodeId s1 = f.net.add_node("s1", false);
  const NodeId sw = f.net.add_node("sw", true);
  const NodeId d = f.net.add_node("d", false);
  f.net.add_link(s1, sw, gig());
  f.net.add_link(sw, d, gig());
  f.net.finalize_routes();
  int done = 0;
  f.net.send(s1, d, 1000 * Network::kMtuBytes, [&] { ++done; });
  f.queue.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(f.net.link_stats(sw, d).drops, 0u);
}

TEST(Network, LoopbackDeliversImmediately) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, b, gig());
  f.net.finalize_routes();
  double t = -1;
  f.net.send(a, a, 1 << 20, [&] { t = f.queue.now(); });
  f.queue.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Network, ZeroByteMessageStillOneFrame) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, b, gig());
  f.net.finalize_routes();
  double t = -1;
  f.net.send(a, b, 0, [&] { t = f.queue.now(); });
  f.queue.run();
  EXPECT_GT(t, 0.0);
}

TEST(Network, Preconditions) {
  Fixture f;
  const NodeId a = f.net.add_node("a", false);
  EXPECT_THROW(f.net.add_link(a, a, gig()), support::Error);
  EXPECT_THROW(f.net.send(a, a, 1, [] {}), support::Error);  // not routed
  const NodeId b = f.net.add_node("b", false);
  f.net.add_link(a, b, gig());
  f.net.finalize_routes();
  EXPECT_THROW(f.net.add_node("late", false), support::Error);
}

}  // namespace
}  // namespace mb::net
