#include "net/topology.h"

#include <gtest/gtest.h>

namespace mb::net {
namespace {

TEST(Topology, SmallClusterUsesSingleSwitch) {
  sim::EventQueue q;
  Network net(q);
  const auto topo = build_tree(net, tibidabo_tree(16));
  EXPECT_EQ(topo.hosts.size(), 16u);
  EXPECT_EQ(topo.leaf_switches.size(), 1u);
  // host -> switch -> host: 2 hops.
  EXPECT_EQ(net.route_hops(topo.hosts[0], topo.hosts[15]), 2u);
}

TEST(Topology, LargeClusterBuildsTwoLevels) {
  sim::EventQueue q;
  Network net(q);
  const auto topo = build_tree(net, tibidabo_tree(100));
  EXPECT_EQ(topo.hosts.size(), 100u);
  EXPECT_EQ(topo.leaf_switches.size(), 3u);  // ceil(100/48)
  // Same leaf: 2 hops; across leaves: host->leaf->root->leaf->host.
  EXPECT_EQ(net.route_hops(topo.hosts[0], topo.hosts[1]), 2u);
  EXPECT_EQ(net.route_hops(topo.hosts[0], topo.hosts[99]), 4u);
}

TEST(Topology, ExactlyFullSwitch) {
  sim::EventQueue q;
  Network net(q);
  const auto topo = build_tree(net, tibidabo_tree(48));
  EXPECT_EQ(topo.leaf_switches.size(), 1u);
  EXPECT_EQ(topo.hosts.size(), 48u);
}

TEST(Topology, TibidaboLinksAreOversubscribed) {
  const auto p = tibidabo_tree(100);
  // One GbE uplink serves up to 48 host ports.
  EXPECT_LE(p.uplink.bandwidth_bytes_per_s,
            2.0 * p.host_link.bandwidth_bytes_per_s);
  EXPECT_LT(p.host_link.buffer_bytes, 1e6);  // shallow cheap-switch buffers
}

TEST(Topology, UpgradedTreeIsFaster) {
  const auto stock = tibidabo_tree(100);
  const auto up = upgraded_tree(100);
  EXPECT_GT(up.uplink.bandwidth_bytes_per_s,
            5.0 * stock.uplink.bandwidth_bytes_per_s);
  EXPECT_LT(up.host_link.latency_s, stock.host_link.latency_s);
  EXPECT_GT(up.host_link.buffer_bytes, stock.host_link.buffer_bytes);
}

TEST(Topology, SingleNodeDegenerate) {
  sim::EventQueue q;
  Network net(q);
  const auto topo = build_tree(net, tibidabo_tree(1));
  EXPECT_EQ(topo.hosts.size(), 1u);
}

}  // namespace
}  // namespace mb::net
