#include "obs/analysis.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::obs {
namespace {

trace::Record rec(std::uint32_t rank, double t0, double t1,
                  trace::EventKind kind, std::string label) {
  trace::Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  return r;
}

// Fig. 5 shape: one slowed node = two sibling ranks (2 and 3), both
// entering every alltoallv ~1 s behind ranks 0 and 1.
trace::Trace slowed_pair_trace() {
  trace::Trace t;
  for (int i = 0; i < 3; ++i) {
    const double base = i * 10.0;
    for (std::uint32_t rank = 0; rank < 4; ++rank) {
      const double t0 = base + (rank >= 2 ? 1.0 : 0.0);
      t.add(rec(rank, t0, t0 + 0.1, trace::EventKind::kCollective,
                "alltoallv"));
    }
  }
  return t;
}

TEST(AnalyzeTimeline, AttributesWaitToBothSlowedSiblings) {
  const trace::Trace t = slowed_pair_trace();
  const Analysis a = analyze_timeline(t, nullptr);

  // Per instance: arrivals {0, 0, 1, 1}, last = 1, median = 0.5,
  // spread wait = 2.0 split evenly over the two late ranks.
  EXPECT_NEAR(a.total_attributed_wait_s, 6.0, 1e-9);
  ASSERT_EQ(a.stragglers.size(), 2u);
  EXPECT_EQ(a.stragglers[0].rank, 2u);
  EXPECT_EQ(a.stragglers[1].rank, 3u);
  for (const Straggler& s : a.stragglers) {
    EXPECT_EQ(s.instances_late, 3u);
    EXPECT_NEAR(s.attributed_wait_s, 3.0, 1e-9);
    EXPECT_NEAR(s.share, 0.5, 1e-9);
    ASSERT_EQ(s.by_label.size(), 1u);
    EXPECT_EQ(s.by_label[0].first, "alltoallv");
  }

  ASSERT_EQ(a.collectives.size(), 1u);
  EXPECT_EQ(a.collectives[0].instances, 3u);
  EXPECT_NEAR(a.collectives[0].arrival_wait_s, 6.0, 1e-9);

  // Critical path: one gate per instance, chronological, naming the
  // first of the tied last arrivals.
  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_DOUBLE_EQ(a.critical_path[0].enter_s, 1.0);
  EXPECT_DOUBLE_EQ(a.critical_path[2].enter_s, 21.0);
  EXPECT_EQ(a.critical_path[0].rank, 2u);
  EXPECT_NEAR(a.critical_path[0].lag_s, 0.5, 1e-9);
}

TEST(AnalyzeTimeline, UniformCollectiveYieldsNoStragglers) {
  trace::Trace t;
  for (int i = 0; i < 4; ++i)
    for (std::uint32_t rank = 0; rank < 4; ++rank)
      t.add(rec(rank, i * 1.0, i * 1.0 + 0.1,
                trace::EventKind::kCollective, "bcast"));
  const Analysis a = analyze_timeline(t, nullptr);
  EXPECT_TRUE(a.stragglers.empty());
  EXPECT_TRUE(a.critical_path.empty());
  EXPECT_DOUBLE_EQ(a.total_attributed_wait_s, 0.0);
}

TEST(AnalyzeTimeline, OneBadInstanceIsNotAStraggler) {
  // Rank 3 is late exactly once: below straggler_min_instances.
  trace::Trace t;
  for (int i = 0; i < 3; ++i) {
    for (std::uint32_t rank = 0; rank < 4; ++rank) {
      const double t0 = i * 10.0 + (i == 1 && rank == 3 ? 1.0 : 0.0);
      t.add(rec(rank, t0, t0 + 0.1, trace::EventKind::kCollective,
                "alltoallv"));
    }
  }
  const Analysis a = analyze_timeline(t, nullptr);
  EXPECT_TRUE(a.stragglers.empty());
  EXPECT_GT(a.total_attributed_wait_s, 0.0);  // the wait is still real
  EXPECT_EQ(a.critical_path.size(), 1u);
}

TEST(AnalyzeTimeline, RanksActivityAndFaultsChronological) {
  trace::Trace t;
  t.add(rec(0, 0.0, 2.0, trace::EventKind::kCompute, "convolution"));
  t.add(rec(0, 2.0, 2.5, trace::EventKind::kSend, "halo"));
  t.add(rec(1, 0.0, 3.0, trace::EventKind::kWait, "recv_wait"));
  t.add(rec(3, 5.0, 5.0, trace::EventKind::kFault, "slowdown_end:node1"));
  t.add(rec(2, 0.5, 0.5, trace::EventKind::kFault, "slowdown:node1"));
  const Analysis a = analyze_timeline(t, nullptr);

  ASSERT_EQ(a.rank_activity.size(), 4u);
  EXPECT_EQ(a.rank_activity[0].rank, 1u);  // biggest waiter first
  EXPECT_DOUBLE_EQ(a.rank_activity[0].wait_s, 3.0);
  ASSERT_EQ(a.faults.size(), 2u);
  EXPECT_EQ(a.faults[0].label, "slowdown:node1");
  EXPECT_EQ(a.faults[1].rank, 3u);
}

TEST(AnalyzeTimeline, HotspotTotalsAndPeakRate) {
  trace::Trace t;  // hotspots come from the time series alone
  TimeSeries ts;
  ts.times_s = {1.0, 2.0, 3.0};
  Series busy;
  busy.name = "net.link.retransmits";
  busy.labels = {{"link", "0->18"}};
  busy.values = {2.0, 2.0, 10.0};
  ts.series.push_back(busy);
  Series idle;  // final value 0: not a hotspot
  idle.name = "net.link.drops";
  idle.labels = {{"link", "3->18"}};
  idle.values = {0.0, 0.0, 0.0};
  ts.series.push_back(idle);
  Series other;  // wrong prefix: ignored
  other.name = "sim.pending_events";
  other.values = {9.0, 9.0, 9.0};
  ts.series.push_back(other);

  const Analysis a = analyze_timeline(t, &ts);
  ASSERT_EQ(a.hotspots.size(), 1u);
  EXPECT_EQ(a.hotspots[0].link, "0->18");
  EXPECT_EQ(a.hotspots[0].metric, "net.link.retransmits");
  EXPECT_DOUBLE_EQ(a.hotspots[0].total, 10.0);
  // Deltas per 1 s window: 2 (from zero), 0, 8 — the peak is the last.
  EXPECT_DOUBLE_EQ(a.hotspots[0].peak_rate_per_s, 8.0);
  EXPECT_DOUBLE_EQ(a.hotspots[0].peak_at_s, 3.0);
}

TEST(AnalyzeTimeline, ProvenanceFlowsFromTrace) {
  trace::Trace t = slowed_pair_trace();
  t.set_provenance("7.7.7", 123);
  const Analysis a = analyze_timeline(t, nullptr);
  EXPECT_EQ(a.tool_version, "7.7.7");
  EXPECT_EQ(a.seed, 123u);
}

TEST(AnalyzeTimeline, ValidatesLateFraction) {
  trace::Trace t;
  AnalysisOptions bad;
  bad.late_fraction = 0.0;
  EXPECT_THROW(analyze_timeline(t, nullptr, bad), support::Error);
  bad.late_fraction = 1.0;
  EXPECT_THROW(analyze_timeline(t, nullptr, bad), support::Error);
}

TEST(AnalyzeTimeline, JsonAndReportNameTheStraggler) {
  const trace::Trace t = slowed_pair_trace();
  const Analysis a = analyze_timeline(t, nullptr);
  const std::string json = to_json(a);
  EXPECT_NE(json.find("\"mb-analysis\""), std::string::npos);
  EXPECT_NE(json.find("\"stragglers\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  const std::string report = render_analysis(a);
  EXPECT_NE(report.find("rank 2"), std::string::npos);
  EXPECT_NE(report.find("alltoallv"), std::string::npos);
}

}  // namespace
}  // namespace mb::obs
