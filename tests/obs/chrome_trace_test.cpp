#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/profiler.h"
#include "support/json.h"

namespace mb::obs {
namespace {

trace::Record rec(std::uint32_t rank, double t0, double t1,
                  trace::EventKind kind, std::string label,
                  std::uint64_t bytes = 0) {
  trace::Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  r.bytes = bytes;
  return r;
}

/// Two ranks, four alltoallv instances (the last one 10x slow on both
/// ranks), plus compute and a p2p send carrying bytes.
trace::Trace sample_trace() {
  trace::Trace t;
  for (std::uint32_t rank = 0; rank < 2; ++rank) {
    t.add(rec(rank, 0.0, 1.0, trace::EventKind::kCompute, "compute"));
    for (int i = 0; i < 4; ++i) {
      const double t0 = 1.0 + i * 2.0;
      const double dur = (i == 3) ? 1.0 : 0.1;
      t.add(rec(rank, t0, t0 + dur, trace::EventKind::kCollective,
                "alltoallv", 4096));
    }
  }
  t.add(rec(0, 9.0, 9.5, trace::EventKind::kSend, "halo", 256));
  return t;
}

support::JsonValue export_and_parse(const trace::Trace& t,
                                    const ChromeTraceOptions& opt = {}) {
  std::ostringstream os;
  write_chrome_trace(os, t, opt);
  return support::parse_json(os.str());
}

TEST(ChromeTrace, DocumentParsesAndHasEventArray) {
  const auto doc = export_and_parse(sample_trace());
  ASSERT_TRUE(doc.is_object());
  const auto& events = doc.at("traceEvents").as_array();
  EXPECT_GT(events.size(), 0u);
  EXPECT_EQ(doc.at("otherData").at("tool").as_string(), "montblanc");
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(ChromeTrace, OneNamedTrackPerRank) {
  const auto doc = export_and_parse(sample_trace());
  std::set<double> named_tids;
  std::set<double> event_tids;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M") {
      if (e.at("name").as_string() == "thread_name")
        named_tids.insert(e.at("tid").as_number());
      continue;
    }
    event_tids.insert(e.at("tid").as_number());
  }
  EXPECT_EQ(named_tids.size(), 2u);  // ranks 0 and 1
  // Every track that carries events has a rank name.
  for (const double tid : event_tids) EXPECT_TRUE(named_tids.count(tid));
}

TEST(ChromeTrace, CompleteEventsUseMicrosecondTimestamps) {
  const auto doc = export_and_parse(sample_trace());
  bool found_compute = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("name").as_string() != "compute") continue;
    found_compute = true;
    EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 0.0);
    EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1e6);  // 1 s
    EXPECT_EQ(e.at("cat").as_string(), "compute");
  }
  EXPECT_TRUE(found_compute);
}

TEST(ChromeTrace, DelayedCollectivesAreFlagged) {
  const auto doc = export_and_parse(sample_trace());
  std::size_t delayed = 0;
  std::size_t normal = 0;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("cat").as_string() != "collective") continue;
    const auto& args = e.at("args");
    EXPECT_EQ(args.at("bytes").as_number(), 4096.0);
    if (args.at("delayed").as_bool()) {
      ++delayed;
      EXPECT_DOUBLE_EQ(args.at("instance").as_number(), 3.0);
      EXPECT_TRUE(args.at("rank_slow").as_bool());
      EXPECT_EQ(e.at("cname").as_string(), "terrible");
    } else {
      ++normal;
    }
  }
  EXPECT_EQ(delayed, 2u);  // instance 3 on both ranks
  EXPECT_EQ(normal, 6u);
}

TEST(ChromeTrace, ProfilerSpansGetTheirOwnProcessTrack) {
  Profiler p;
  double t = 0.0;
  p.set_clock([&t] { return t; });
  p.set_enabled(true);
  p.enter("run");
  p.enter("inner");
  t = 1.0;
  p.exit();
  t = 1.5;
  p.exit();

  ChromeTraceOptions opt;
  opt.spans = &p.root();
  const auto doc = export_and_parse(sample_trace(), opt);

  bool saw_profiler_process = false;
  bool saw_run = false;
  bool saw_inner = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "process_name" &&
        e.at("args").at("name").as_string() == "profiler (aggregated)")
      saw_profiler_process = true;
    if (e.at("ph").as_string() != "X" || e.at("pid").as_number() != 1.0)
      continue;
    if (e.at("name").as_string() == "run") {
      saw_run = true;
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1.5e6);
    }
    if (e.at("name").as_string() == "inner") {
      saw_inner = true;
      // Sequential layout: the child starts where its parent starts.
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1e6);
    }
  }
  EXPECT_TRUE(saw_profiler_process);
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_inner);
}

TEST(ChromeTrace, EmptyTraceStillValid) {
  const auto doc = export_and_parse(trace::Trace{});
  // Only the cluster process_name metadata; still a well-formed document.
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
}

}  // namespace
}  // namespace mb::obs
