#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/json.h"

namespace mb::obs {
namespace {

TEST(Metrics, CounterFindOrCreateAccumulates) {
  Registry r;
  Counter& c = r.counter("x");
  c.inc();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(r.counter("x").value(), 3.5);
  EXPECT_EQ(&r.counter("x"), &c);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  Registry r;
  Counter& a = r.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter& b = r.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.counter_key(0), "x{a=1,b=2}");
}

TEST(Metrics, DifferentLabelsAreDifferentSeries) {
  Registry r;
  r.counter("x", {{"rank", "0"}}).add(1.0);
  r.counter("x", {{"rank", "1"}}).add(2.0);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.counter("x", {{"rank", "0"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(r.counter("x", {{"rank", "1"}}).value(), 2.0);
}

TEST(Metrics, DuplicateLabelKeysRejected) {
  Registry r;
  EXPECT_THROW(r.counter("x", {{"a", "1"}, {"a", "2"}}), support::Error);
}

TEST(Metrics, TypeMismatchRejected) {
  Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), support::Error);
  EXPECT_THROW(r.histogram("x", {1.0}), support::Error);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Registry r;
  Histogram& h = r.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(-3.0);  // below the first bound -> first bucket
  h.observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.observe(1.0001);
  h.observe(4.0);
  h.observe(4.5);  // past the last bound -> overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 1.0 + 1.0001 + 4.0 + 4.5);
}

TEST(Metrics, HistogramBoundsMustMatchOnRelookup) {
  Registry r;
  r.histogram("lat", {1.0, 2.0});
  EXPECT_NO_THROW(r.histogram("lat", {1.0, 2.0}));
  EXPECT_THROW(r.histogram("lat", {1.0, 3.0}), support::Error);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), support::Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), support::Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), support::Error);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandlesValid) {
  Registry r;
  Counter& c = r.counter("x");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h", {1.0});
  c.add(5.0);
  g.set(7.0);
  h.observe(0.5);
  r.reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the handle still feeds the registered series
  EXPECT_DOUBLE_EQ(r.counter("x").value(), 1.0);
}

TEST(Metrics, CounterSubsetIndexesOnlyCounters) {
  Registry r;
  r.counter("a");
  r.gauge("g");
  r.counter("b", {{"k", "v"}});
  r.histogram("h", {1.0});
  ASSERT_EQ(r.counter_count(), 2u);
  EXPECT_EQ(r.counter_key(0), "a");
  EXPECT_EQ(r.counter_key(1), "b{k=v}");
  EXPECT_THROW(r.counter_value(2), support::Error);
}

TEST(Metrics, SnapshotRoundTripsThroughJson) {
  Registry r;
  r.counter("bytes", {{"rank", "3"}}).add(4096.0);
  r.gauge("depth").set(17.0);
  Histogram& h = r.histogram("lat", {1.0, 8.0});
  h.observe(0.5);
  h.observe(100.0);

  const auto before = r.snapshot();
  support::JsonWriter w;
  write_metrics_json(w, before);
  const auto after = parse_metrics_json(support::parse_json(w.str()));

  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].type, before[i].type);
    EXPECT_EQ(after[i].labels, before[i].labels);
    EXPECT_DOUBLE_EQ(after[i].value, before[i].value);
    EXPECT_EQ(after[i].bounds, before[i].bounds);
    EXPECT_EQ(after[i].counts, before[i].counts);
    EXPECT_EQ(after[i].overflow, before[i].overflow);
    EXPECT_EQ(after[i].count, before[i].count);
  }
  EXPECT_EQ(after[0].key(), "bytes{rank=3}");
}

}  // namespace
}  // namespace mb::obs
