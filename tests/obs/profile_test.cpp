#include "obs/profile.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/version.h"

namespace mb::obs {
namespace {

/// A small profiled run: two phases under one root span, one counter.
struct Fixture {
  Registry registry;
  Profiler profiler{&registry};
  double t = 0.0;

  Fixture() {
    profiler.set_clock([this] { return t; });
    profiler.set_enabled(true);
    profiler.enter("cmd");
    profiler.enter("phase-a");
    registry.counter("ops").add(5.0);
    t = 2.0;
    profiler.exit();
    profiler.enter("phase-b");
    t = 3.0;
    profiler.exit();
    t = 3.1;
    profiler.exit();
  }
};

TEST(Profile, CaptureStampsIdentityAndTotals) {
  Fixture f;
  const Profile p =
      capture_profile(f.profiler, f.registry, "mbctl", "fig4 --ranks 8");
  EXPECT_EQ(p.tool, "mbctl");
  EXPECT_EQ(p.tool_version, support::version());
  EXPECT_EQ(p.command, "fig4 --ranks 8");
  EXPECT_DOUBLE_EQ(p.total_wall_s, 3.1);
  ASSERT_EQ(p.spans.children.size(), 1u);
  EXPECT_EQ(p.spans.children[0].name, "cmd");
  EXPECT_EQ(p.metrics.size(), 1u);
}

TEST(Profile, CaptureWithOpenSpansThrows) {
  Fixture f;
  f.profiler.enter("still-open");
  EXPECT_THROW(capture_profile(f.profiler, f.registry, "mbctl", "x"),
               support::Error);
  f.profiler.exit();
}

TEST(Profile, JsonRoundTrip) {
  Fixture f;
  const Profile before =
      capture_profile(f.profiler, f.registry, "mbctl", "fig4");
  const Profile after = profile_from_json(to_json(before));
  EXPECT_EQ(after.schema_version, before.schema_version);
  EXPECT_EQ(after.tool, before.tool);
  EXPECT_EQ(after.tool_version, before.tool_version);
  EXPECT_EQ(after.command, before.command);
  EXPECT_DOUBLE_EQ(after.total_wall_s, before.total_wall_s);
  ASSERT_EQ(after.spans.children.size(), 1u);
  const SpanNode& cmd = after.spans.children[0];
  EXPECT_DOUBLE_EQ(cmd.total_s, 3.1);
  ASSERT_NE(cmd.child("phase-a"), nullptr);
  ASSERT_EQ(cmd.child("phase-a")->counter_deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(cmd.child("phase-a")->counter_deltas[0].second, 5.0);
  ASSERT_EQ(after.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(after.metrics[0].value, 5.0);
}

TEST(Profile, RenderReportsPhaseCoverage) {
  Fixture f;
  const Profile p = capture_profile(f.profiler, f.registry, "mbctl", "fig4");
  const std::string text = render_profile(p);
  EXPECT_NE(text.find("phase-a"), std::string::npos);
  // phases cover 3.0 s of the 3.1 s root span: 96.8%.
  EXPECT_NE(text.find("phase coverage: 96.8% of 'cmd' wall time"),
            std::string::npos);
  EXPECT_NE(text.find("ops"), std::string::npos);
}

TEST(Profile, RejectsForeignDocuments) {
  EXPECT_THROW(profile_from_json("[]"), support::Error);
  EXPECT_THROW(profile_from_json(R"({"schema": "other"})"), support::Error);
  EXPECT_THROW(
      profile_from_json(R"({"schema": "mb-profile", "schema_version": 99})"),
      support::Error);
}

}  // namespace
}  // namespace mb::obs
