#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/json.h"

namespace mb::obs {
namespace {

/// Profiler on a manually advanced clock for exact wall-time assertions.
struct Fixture {
  Registry registry;
  Profiler profiler{&registry};
  double t = 0.0;

  Fixture() {
    profiler.set_clock([this] { return t; });
    profiler.set_enabled(true);
  }
};

TEST(Profiler, DisabledByDefaultRecordsNothing) {
  Profiler p;
  {
    ScopedSpan span(p, "work");
  }
  EXPECT_FALSE(p.enabled());
  EXPECT_TRUE(p.root().children.empty());
}

TEST(Profiler, NestedSpansFormHierarchyWithSelfTime) {
  Fixture f;
  f.profiler.enter("outer");
  f.t = 1.0;
  f.profiler.enter("inner");
  f.t = 3.0;
  f.profiler.exit();
  f.t = 4.0;
  f.profiler.exit();

  ASSERT_EQ(f.profiler.root().children.size(), 1u);
  const SpanNode& outer = f.profiler.root().children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_DOUBLE_EQ(outer.total_s, 4.0);
  EXPECT_DOUBLE_EQ(outer.self_s(), 2.0);
  const SpanNode* inner = outer.child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->total_s, 2.0);
}

TEST(Profiler, ReenteringASpanAggregatesIntoOneNode) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.profiler.enter("loop");
    f.t += 0.5;
    f.profiler.exit();
  }
  ASSERT_EQ(f.profiler.root().children.size(), 1u);
  EXPECT_EQ(f.profiler.root().children[0].calls, 3u);
  EXPECT_DOUBLE_EQ(f.profiler.root().children[0].total_s, 1.5);
}

TEST(Profiler, ScopedSpanUnwindsOnException) {
  Fixture f;
  try {
    ScopedSpan outer(f.profiler, "outer");
    ScopedSpan inner(f.profiler, "inner");
    throw std::runtime_error("workload failed");
  } catch (const std::runtime_error&) {
  }
  // Unwinding closed both spans; the hierarchy is consistent.
  EXPECT_EQ(f.profiler.open_depth(), 0u);
  ASSERT_EQ(f.profiler.root().children.size(), 1u);
  const SpanNode& outer = f.profiler.root().children[0];
  EXPECT_EQ(outer.calls, 1u);
  ASSERT_NE(outer.child("inner"), nullptr);
  EXPECT_EQ(outer.child("inner")->calls, 1u);
}

TEST(Profiler, CounterDeltasAttachToTheSpanThatMovedThem) {
  Fixture f;
  Counter& bytes = f.registry.counter("bytes", {{"rank", "0"}});
  Counter& idle = f.registry.counter("idle");
  bytes.add(100.0);  // movement before the span must not be attributed

  f.profiler.enter("work");
  bytes.add(42.0);
  f.profiler.exit();

  const SpanNode& work = f.profiler.root().children[0];
  ASSERT_EQ(work.counter_deltas.size(), 1u);  // zero-delta 'idle' omitted
  EXPECT_EQ(work.counter_deltas[0].first, "bytes{rank=0}");
  EXPECT_DOUBLE_EQ(work.counter_deltas[0].second, 42.0);
  EXPECT_DOUBLE_EQ(idle.value(), 0.0);
}

TEST(Profiler, CountersRegisteredMidSpanStillAttribute) {
  Fixture f;
  f.profiler.enter("work");
  f.registry.counter("born_inside").add(7.0);
  f.profiler.exit();
  const SpanNode& work = f.profiler.root().children[0];
  ASSERT_EQ(work.counter_deltas.size(), 1u);
  EXPECT_EQ(work.counter_deltas[0].first, "born_inside");
  EXPECT_DOUBLE_EQ(work.counter_deltas[0].second, 7.0);
}

TEST(Profiler, ToggleWhileOpenThrows) {
  Fixture f;
  f.profiler.enter("open");
  EXPECT_THROW(f.profiler.set_enabled(false), support::Error);
  EXPECT_THROW(f.profiler.reset(), support::Error);
  f.profiler.exit();
  EXPECT_NO_THROW(f.profiler.set_enabled(false));
}

TEST(Profiler, EnablingResetsPriorSpans) {
  Fixture f;
  f.profiler.enter("old");
  f.profiler.exit();
  f.profiler.set_enabled(true);
  EXPECT_TRUE(f.profiler.root().children.empty());
}

TEST(Profiler, SpansJsonRoundTrip) {
  Fixture f;
  f.profiler.enter("a");
  f.registry.counter("c").add(3.0);
  f.t = 1.0;
  f.profiler.enter("b");
  f.t = 1.5;
  f.profiler.exit();
  f.profiler.exit();

  support::JsonWriter w;
  write_spans_json(w, f.profiler.root());
  const SpanNode parsed = parse_spans_json(support::parse_json(w.str()));

  ASSERT_EQ(parsed.children.size(), 1u);
  const SpanNode& a = parsed.children[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.calls, 1u);
  EXPECT_DOUBLE_EQ(a.total_s, 1.5);
  ASSERT_EQ(a.counter_deltas.size(), 1u);
  EXPECT_EQ(a.counter_deltas[0].first, "c");
  EXPECT_DOUBLE_EQ(a.counter_deltas[0].second, 3.0);
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].name, "b");
}

TEST(Profiler, RenderSummaryShowsSpansAndDeltas) {
  Fixture f;
  f.profiler.enter("phase");
  f.registry.counter("ops").add(12.0);
  f.t = 2.0;
  f.profiler.exit();
  const std::string text = render_span_summary(f.profiler.root());
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("+ ops = 12"), std::string::npos);
}

TEST(Profiler, ExitWithoutEnterThrows) {
  Fixture f;
  EXPECT_THROW(f.profiler.exit(), support::Error);
}

TEST(Profiler, SpansFromOtherThreadsAreIgnored) {
  // The profiler is single-threaded by design; campaign workers calling
  // enter/exit (e.g. through a workload that was instrumented for serial
  // use) must be no-ops, not data races or hierarchy corruption.
  Fixture f;
  f.profiler.enter("owner");
  std::thread worker([&] {
    f.profiler.enter("ignored");
    f.profiler.exit();  // would throw on the owner thread if unmatched
  });
  worker.join();
  f.t = 1.0;
  f.profiler.exit();

  EXPECT_EQ(f.profiler.open_depth(), 0u);
  ASSERT_EQ(f.profiler.root().children.size(), 1u);
  const SpanNode& owner = f.profiler.root().children[0];
  EXPECT_EQ(owner.name, "owner");
  EXPECT_EQ(owner.child("ignored"), nullptr);
}

}  // namespace
}  // namespace mb::obs
