#include "obs/rollup.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/rng.h"

namespace mb::obs {
namespace {

TEST(Rollup, EventQueueGaugesTrackTheCalendar) {
  sim::EventQueue queue;
  // Three simultaneous pending events drive the high-water mark to 3.
  queue.schedule_in(1.0, [] {});
  queue.schedule_in(2.0, [] {});
  queue.schedule_in(3.0, [] {});
  queue.run();

  Registry r;
  publish_event_queue(r, queue);
  EXPECT_DOUBLE_EQ(r.gauge("sim.events_executed").value(), 3.0);
  EXPECT_DOUBLE_EQ(r.gauge("sim.events_scheduled").value(), 3.0);
  EXPECT_DOUBLE_EQ(r.gauge("sim.calendar_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(r.gauge("sim.calendar_max_depth").value(), 3.0);
}

TEST(Rollup, MachineGaugesCoverEveryCacheLevel) {
  sim::Machine machine(arch::snowball(), sim::PagePolicy::kConsecutive,
                       support::Rng(1));
  const auto region = machine.mmap(64 * 1024);
  for (std::uint64_t off = 0; off < 64 * 1024; off += 64)
    machine.touch(region.vaddr + off, 8, /*write=*/false);

  Registry r;
  publish_machine(r, machine);

  const std::string platform = machine.platform().name;
  const std::size_t levels = machine.hierarchy().stats().level.size();
  ASSERT_GT(levels, 0u);
  double total_accesses = 0.0;
  for (std::size_t i = 0; i < levels; ++i) {
    const Labels labels{{"level", "L" + std::to_string(i + 1)},
                        {"platform", platform}};
    total_accesses += r.gauge("cache.accesses", labels).value();
    // hits + misses partition accesses at every level.
    EXPECT_DOUBLE_EQ(r.gauge("cache.hits", labels).value() +
                         r.gauge("cache.misses", labels).value(),
                     r.gauge("cache.accesses", labels).value());
  }
  EXPECT_GT(total_accesses, 0.0);
  EXPECT_GE(r.gauge("cache.memory_bytes", {{"platform", platform}}).value(),
            0.0);
}

}  // namespace
}  // namespace mb::obs
