#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "support/check.h"

namespace mb::obs {
namespace {

TEST(TimeSampler, SamplesOnSimTimeGridAndStops) {
  sim::EventQueue queue;
  int work = 0;
  // Work events at 0.05 s intervals keep the queue busy until t = 0.5.
  for (int i = 1; i <= 10; ++i)
    queue.schedule_in(0.05 * i, [&work] { ++work; });

  TimeSampler sampler;
  sampler.add_probe("work.done",
                    [&work] { return static_cast<double>(work); });
  sampler.arm(queue, 0.1);
  queue.run();

  EXPECT_EQ(work, 10);
  const TimeSeries ts = sampler.take();
  ASSERT_GE(ts.times_s.size(), 5u);
  EXPECT_DOUBLE_EQ(ts.times_s.front(), 0.1);
  ASSERT_EQ(ts.series.size(), 1u);
  EXPECT_EQ(ts.series[0].name, "work.done");
  // At t=0.1 two work events (0.05, 0.10) have fired; monotone after.
  EXPECT_DOUBLE_EQ(ts.series[0].values.front(), 2.0);
  for (std::size_t i = 1; i < ts.series[0].values.size(); ++i)
    EXPECT_GE(ts.series[0].values[i], ts.series[0].values[i - 1]);
  // The sampler did not hold the loop open much past the last event.
  EXPECT_LE(ts.times_s.back(), 0.5 + 0.1 + 1e-9);
}

TEST(TimeSampler, MaxSamplesBoundsMemory) {
  sim::EventQueue queue;
  for (int i = 1; i <= 100; ++i)
    queue.schedule_in(0.1 * i, [] {});
  TimeSampler sampler;
  sampler.add_probe("x", [] { return 1.0; });
  sampler.arm(queue, 0.1, /*max_samples=*/5);
  queue.run();
  EXPECT_EQ(sampler.samples(), 5u);
}

TEST(TimeSampler, ProbesMustPrecedeArm) {
  sim::EventQueue queue;
  TimeSampler sampler;
  sampler.add_probe("x", [] { return 0.0; });
  sampler.arm(queue, 0.5);
  EXPECT_THROW(sampler.add_probe("y", [] { return 0.0; }),
               support::Error);
  EXPECT_THROW(sampler.arm(queue, 0.5), support::Error);
}

TEST(TimeSeries, JsonRoundTrip) {
  TimeSeries ts;
  ts.tool_version = "1.0.0";
  ts.seed = 9;
  ts.interval_s = 0.25;
  ts.times_s = {0.25, 0.5};
  Series s;
  s.name = "net.link.retransmits";
  s.labels = {{"link", "0->18"}};
  s.values = {0.0, 3.0};
  ts.series.push_back(s);

  const TimeSeries back = timeseries_from_json(to_json(ts));
  EXPECT_EQ(back.tool_version, "1.0.0");
  EXPECT_EQ(back.seed, 9u);
  EXPECT_DOUBLE_EQ(back.interval_s, 0.25);
  EXPECT_EQ(back.times_s, ts.times_s);
  ASSERT_EQ(back.series.size(), 1u);
  EXPECT_EQ(back.series[0].name, "net.link.retransmits");
  EXPECT_EQ(back.series[0].labels, ts.series[0].labels);
  EXPECT_EQ(back.series[0].values, ts.series[0].values);
}

TEST(TimeSeries, FromJsonValidates) {
  EXPECT_THROW(timeseries_from_json("{\"schema\":\"nope\"}"),
               support::Error);
  EXPECT_THROW(
      timeseries_from_json(
          "{\"schema\":\"mb-timeseries\",\"schema_version\":99}"),
      support::Error);
}

TEST(PruneSeries, KeepsTopByFinalValueDropsZeros) {
  TimeSeries ts;
  ts.times_s = {1.0};
  const auto add = [&ts](std::string name, double final_value) {
    Series s;
    s.name = std::move(name);
    s.values = {final_value};
    ts.series.push_back(std::move(s));
  };
  add("sim.pending_events", 5.0);  // prefix mismatch: always kept
  add("net.link.a", 10.0);
  add("net.link.b", 0.0);  // all-zero: always dropped
  add("net.link.c", 30.0);
  add("net.link.d", 20.0);

  prune_series(ts, "net.link.", 2);
  ASSERT_EQ(ts.series.size(), 3u);
  EXPECT_EQ(ts.series[0].name, "sim.pending_events");
  EXPECT_EQ(ts.series[1].name, "net.link.c");
  EXPECT_EQ(ts.series[2].name, "net.link.d");
}

}  // namespace
}  // namespace mb::obs
