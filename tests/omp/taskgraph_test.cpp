#include "omp/taskgraph.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::omp {
namespace {

TEST(TaskGraph, TotalWorkAndCriticalPath) {
  TaskGraph g;
  const auto a = g.add(2.0);
  const auto b = g.add(3.0, {a});
  g.add(1.0, {a});
  g.add(0.5, {b});
  EXPECT_DOUBLE_EQ(g.total_work(), 6.5);
  EXPECT_DOUBLE_EQ(g.critical_path(), 5.5);  // a -> b -> 0.5
}

TEST(TaskGraph, ForwardDependenciesRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add(1.0, {0}), support::Error);  // self/forward reference
}

TEST(TaskGraph, NegativeDurationRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add(-1.0), support::Error);
}

TEST(Schedule, SingleCoreEqualsTotalWork) {
  const auto g = amdahl_graph(10.0, 0.2, 8);
  const auto s = schedule(g, 1);
  EXPECT_NEAR(s.makespan, 10.0, 1e-12);
  EXPECT_NEAR(s.efficiency, 1.0, 1e-12);
}

TEST(Schedule, InfiniteCoresReachCriticalPath) {
  const auto g = amdahl_graph(10.0, 0.2, 8);
  const auto s = schedule(g, 64);
  EXPECT_NEAR(s.makespan, g.critical_path(), 1e-12);
}

TEST(Schedule, MakespanBounds) {
  // Graham: cp <= makespan <= work/cores + cp for any list schedule.
  const auto g = lu_wavefront_graph(0.3, 0.1, 12);
  for (const std::uint32_t cores : {1u, 2u, 3u, 4u, 8u}) {
    const auto s = schedule(g, cores);
    EXPECT_GE(s.makespan + 1e-12, g.critical_path());
    EXPECT_GE(s.makespan + 1e-12, g.total_work() / cores);
    EXPECT_LE(s.makespan,
              g.total_work() / cores + g.critical_path() + 1e-12);
  }
}

TEST(Schedule, MakespanMonotoneInCores) {
  const auto g = lu_wavefront_graph(0.2, 0.05, 16);
  double prev = 1e300;
  for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    const auto s = schedule(g, cores);
    EXPECT_LE(s.makespan, prev + 1e-12);
    prev = s.makespan;
  }
}

TEST(Schedule, DependenciesRespected) {
  TaskGraph g;
  const auto a = g.add(1.0);
  const auto b = g.add(1.0, {a});
  const auto c = g.add(1.0, {b});
  const auto s = schedule(g, 4);
  EXPECT_GE(s.start[b] + 1e-12, 1.0);
  EXPECT_GE(s.start[c] + 1e-12, 2.0);
}

TEST(Schedule, BusyTimeConservesWork) {
  const auto g = amdahl_graph(12.0, 0.1, 13);
  const auto s = schedule(g, 3);
  double busy = 0.0;
  for (const double b : s.busy) busy += b;
  EXPECT_NEAR(busy, g.total_work(), 1e-9);
}

TEST(Schedule, AmdahlEfficiencyMatchesTheLaw) {
  // With plentiful chunks the schedule should track Amdahl's law.
  const double f = 0.1;
  const auto g = amdahl_graph(100.0, f, 64);
  const auto s2 = schedule(g, 2);
  const double amdahl2 = 1.0 / (f + (1.0 - f) / 2.0) / 2.0;
  EXPECT_NEAR(s2.efficiency, amdahl2, 0.05);
}

TEST(Schedule, WavefrontLimitsParallelism) {
  // The LU wavefront's serial panels cap speedup well below core count.
  const auto g = lu_wavefront_graph(1.0, 0.2, 10);
  const auto s = schedule(g, 16);
  EXPECT_LT(s.efficiency, 0.5);
  EXPECT_GE(s.makespan, 10.0);  // at least the chain of panels
}

TEST(Schedule, EmptyGraph) {
  TaskGraph g;
  const auto s = schedule(g, 4);
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 1.0);
}

TEST(Schedule, ZeroCoresRejected) {
  TaskGraph g;
  g.add(1.0);
  EXPECT_THROW(schedule(g, 0), support::Error);
}


TEST(IrregularGraph, PreservesTotalWork) {
  const auto g = irregular_graph(10.0, 0.1, 16, 0.5, 7);
  EXPECT_NEAR(g.total_work(), 10.0, 1e-9);
  EXPECT_EQ(g.size(), 17u);  // serial + 16 chunks
}

TEST(IrregularGraph, ZeroImbalanceMatchesAmdahl) {
  const auto a = amdahl_graph(8.0, 0.2, 8);
  const auto b = irregular_graph(8.0, 0.2, 8, 0.0, 1);
  for (TaskId t = 0; t < a.size(); ++t)
    EXPECT_NEAR(a.task(t).seconds, b.task(t).seconds, 1e-12);
}

TEST(IrregularGraph, FewChunksBalanceWorseThanMany) {
  // With irregular tasks and no overhead, more chunks always balance
  // at least as well.
  const auto coarse = irregular_graph(10.0, 0.0, 4, 0.6, 3);
  const auto fine = irregular_graph(10.0, 0.0, 64, 0.6, 3);
  EXPECT_GE(schedule(coarse, 4).makespan,
            schedule(fine, 4).makespan - 1e-9);
}

TEST(Schedule, OverheadPenalizesFineGrain) {
  const auto fine = irregular_graph(1.0, 0.0, 1024, 0.3, 5);
  const auto coarse = irregular_graph(1.0, 0.0, 16, 0.3, 5);
  const double oh = 1e-3;
  EXPECT_GT(schedule(fine, 4, oh).makespan,
            schedule(coarse, 4, oh).makespan);
}

TEST(Schedule, GrainOptimumIsInterior) {
  // Irregular work + dispatch overhead: the best chunk count is neither
  // the minimum nor the maximum of the sweep.
  double best = 1e300;
  std::uint32_t best_chunks = 0;
  for (const std::uint32_t chunks : {2u, 8u, 32u, 128u, 512u, 4096u}) {
    const auto g = irregular_graph(0.1, 0.05, chunks, 0.6, 42);
    const double m = schedule(g, 2, 25e-6).makespan;
    if (m < best) {
      best = m;
      best_chunks = chunks;
    }
  }
  EXPECT_GT(best_chunks, 2u);
  EXPECT_LT(best_chunks, 4096u);
}

class AmdahlSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(AmdahlSweep, EfficiencyNeverExceedsAmdahlBound) {
  const double f = std::get<0>(GetParam());
  const std::uint32_t cores = std::get<1>(GetParam());
  const auto g = amdahl_graph(50.0, f, 128);
  const auto s = schedule(g, cores);
  const double bound = 1.0 / (f + (1.0 - f) / cores) / cores;
  EXPECT_LE(s.efficiency, bound + 0.03);
  EXPECT_GT(s.efficiency, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AmdahlSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.2, 0.5),
                       ::testing::Values(1u, 2u, 4u, 16u)),
    [](const auto& info) {
      return "f" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_c" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mb::omp
