#include "os/address_space.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::os {
namespace {

AddressSpace make_space() {
  return AddressSpace(std::make_unique<ConsecutivePageAllocator>(256), 4096);
}

TEST(AddressSpace, MmapRoundsUpToPages) {
  auto as = make_space();
  const Region r = as.mmap(5000);
  EXPECT_EQ(r.bytes, 8192u);
}

TEST(AddressSpace, TranslatePreservesPageOffset) {
  auto as = make_space();
  const Region r = as.mmap(8192);
  const auto pa = as.translate(r.vaddr + 4096 + 123);
  EXPECT_EQ(pa & 4095u, 123u);
}

TEST(AddressSpace, ConsecutiveBackingIsContiguous) {
  auto as = make_space();
  const Region r = as.mmap(4 * 4096);
  const auto frames = as.frames_of(r);
  for (std::size_t i = 1; i < frames.size(); ++i)
    EXPECT_EQ(frames[i], frames[i - 1] + 1);
}

TEST(AddressSpace, RandomBackingIsScattered) {
  AddressSpace as(std::make_unique<RandomPageAllocator>(1024,
                                                        support::Rng(3)),
                  4096);
  const Region r = as.mmap(16 * 4096);
  const auto frames = as.frames_of(r);
  bool scattered = false;
  for (std::size_t i = 1; i < frames.size(); ++i)
    if (frames[i] != frames[i - 1] + 1) scattered = true;
  EXPECT_TRUE(scattered);
}

TEST(AddressSpace, UnmappedAddressThrows) {
  auto as = make_space();
  EXPECT_THROW(as.translate(0xDEAD0000), support::Error);
}

TEST(AddressSpace, MunmapInvalidatesTranslation) {
  auto as = make_space();
  const Region r = as.mmap(4096);
  EXPECT_NO_THROW(as.translate(r.vaddr));
  as.munmap(r);
  EXPECT_THROW(as.translate(r.vaddr), support::Error);
}

TEST(AddressSpace, RegionsDoNotOverlap) {
  auto as = make_space();
  const Region a = as.mmap(4096);
  const Region b = as.mmap(4096);
  EXPECT_GE(b.vaddr, a.vaddr + a.bytes);
}

TEST(AddressSpace, GuardGapBetweenRegions) {
  auto as = make_space();
  const Region a = as.mmap(4096);
  const Region b = as.mmap(4096);
  EXPECT_GT(b.vaddr, a.vaddr + a.bytes);  // strictly greater: guard page
}

TEST(AddressSpace, DoubleUnmapThrows) {
  auto as = make_space();
  const Region r = as.mmap(4096);
  as.munmap(r);
  EXPECT_THROW(as.munmap(r), support::Error);
}

TEST(AddressSpace, ZeroByteMmapRejected) {
  auto as = make_space();
  EXPECT_THROW(as.mmap(0), support::Error);
}

}  // namespace
}  // namespace mb::os
