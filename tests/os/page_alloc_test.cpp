#include "os/page_alloc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/check.h"

namespace mb::os {
namespace {

bool is_consecutive(const std::vector<Pfn>& frames) {
  for (std::size_t i = 1; i < frames.size(); ++i)
    if (frames[i] != frames[i - 1] + 1) return false;
  return true;
}

TEST(ConsecutiveAllocator, HandsOutContiguousFrames) {
  ConsecutivePageAllocator a(64);
  const auto f = a.allocate(8);
  EXPECT_TRUE(is_consecutive(f));
  EXPECT_EQ(f.front(), 0u);
  EXPECT_EQ(a.available(), 56u);
}

TEST(ConsecutiveAllocator, ReusesFreedRange) {
  ConsecutivePageAllocator a(64);
  auto f1 = a.allocate(8);
  a.free(f1);
  const auto f2 = a.allocate(8);
  EXPECT_EQ(f1, f2);
}

TEST(ConsecutiveAllocator, ExhaustionThrows) {
  ConsecutivePageAllocator a(4);
  a.allocate(4);
  EXPECT_THROW(a.allocate(1), support::Error);
}

TEST(ConsecutiveAllocator, DoubleFreeDetected) {
  ConsecutivePageAllocator a(4);
  auto f = a.allocate(2);
  a.free(f);
  EXPECT_THROW(a.free(f), support::Error);
}

TEST(ReuseBiasedAllocator, FramesAreNotConsecutive) {
  ReuseBiasedPageAllocator a(1024, support::Rng(5));
  const auto f = a.allocate(16);
  EXPECT_FALSE(is_consecutive(f));
}

TEST(ReuseBiasedAllocator, MallocFreeCycleReturnsSameFrames) {
  // The paper's observation: within one run the OS hands back the same
  // physical pages, so repeated measurements are stable.
  ReuseBiasedPageAllocator a(1024, support::Rng(5));
  auto f1 = a.allocate(16);
  a.free(f1);
  auto f2 = a.allocate(16);
  std::sort(f1.begin(), f1.end());
  std::sort(f2.begin(), f2.end());
  EXPECT_EQ(f1, f2);
}

TEST(ReuseBiasedAllocator, DifferentSeedsDifferentPlacement) {
  // Across runs (reboots / different allocator state), placement differs:
  // the paper's between-run irreproducibility.
  ReuseBiasedPageAllocator a(1024, support::Rng(5));
  ReuseBiasedPageAllocator b(1024, support::Rng(6));
  EXPECT_NE(a.allocate(16), b.allocate(16));
}

TEST(ReuseBiasedAllocator, SameSeedSamePlacement) {
  ReuseBiasedPageAllocator a(1024, support::Rng(7));
  ReuseBiasedPageAllocator b(1024, support::Rng(7));
  EXPECT_EQ(a.allocate(16), b.allocate(16));
}

TEST(RandomAllocator, EveryAllocationDiffers) {
  RandomPageAllocator a(4096, support::Rng(9));
  auto f1 = a.allocate(16);
  a.free(f1);
  auto f2 = a.allocate(16);
  std::sort(f1.begin(), f1.end());
  std::sort(f2.begin(), f2.end());
  EXPECT_NE(f1, f2);  // overwhelmingly likely with 4096 frames
}

TEST(RandomAllocator, NoDuplicateFrames) {
  RandomPageAllocator a(256, support::Rng(11));
  const auto f = a.allocate(256);
  std::set<Pfn> s(f.begin(), f.end());
  EXPECT_EQ(s.size(), 256u);
  EXPECT_EQ(a.available(), 0u);
}

TEST(RandomAllocator, FreeRestoresCapacity) {
  RandomPageAllocator a(64, support::Rng(13));
  auto f = a.allocate(64);
  EXPECT_THROW(a.allocate(1), support::Error);
  a.free(f);
  EXPECT_EQ(a.available(), 64u);
  EXPECT_NO_THROW(a.allocate(64));
}

TEST(AllAllocators, RejectEmptyPool) {
  EXPECT_THROW(ConsecutivePageAllocator{0}, support::Error);
  EXPECT_THROW(ReuseBiasedPageAllocator(0, support::Rng(1)), support::Error);
  EXPECT_THROW(RandomPageAllocator(0, support::Rng(1)), support::Error);
}

}  // namespace
}  // namespace mb::os
