#include "os/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/modes.h"

namespace mb::os {
namespace {

TEST(FairScheduler, SlowdownNearOneWithLowVariance) {
  FairScheduler s(support::Rng(1), 0.01);
  for (int i = 0; i < 1000; ++i) {
    const double f = s.next_slowdown();
    EXPECT_GE(f, 1.0);
    EXPECT_LT(f, 1.2);
  }
}

TEST(FairScheduler, ResetReproducesSequence) {
  FairScheduler s(support::Rng(2));
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) first.push_back(s.next_slowdown());
  s.reset();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.next_slowdown(), first[i]);
}

TEST(RealTimeAnomalous, ProducesTwoModes) {
  RealTimeAnomalous s(support::Rng(3));
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(s.next_slowdown());
  const auto split = stats::split_modes(xs);
  ASSERT_TRUE(split.bimodal);
  EXPECT_NEAR(split.high_center / split.low_center, 5.0, 0.6);
}

TEST(RealTimeAnomalous, DegradedSamplesAreConsecutive) {
  RealTimeAnomalous s(support::Rng(4));
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(s.next_slowdown());
  const auto split = stats::split_modes(xs);
  ASSERT_TRUE(split.bimodal);
  // The degraded (high-slowdown) samples cluster in time (paper Fig. 5b).
  EXPECT_TRUE(stats::is_temporally_clustered(split.high_indices, xs.size()));
}

TEST(RealTimeAnomalous, DegradedFractionMatchesStationaryDistribution) {
  RealTimeAnomalous::Params params;
  RealTimeAnomalous s(support::Rng(5), params);
  int degraded = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    s.next_slowdown();
    if (s.degraded()) ++degraded;
  }
  const double expected = params.enter_degraded /
                          (params.enter_degraded + params.exit_degraded);
  EXPECT_NEAR(static_cast<double>(degraded) / n, expected, 0.03);
}

TEST(RealTimeAnomalous, ResetClearsDegradedState) {
  RealTimeAnomalous s(support::Rng(6));
  for (int i = 0; i < 500; ++i) s.next_slowdown();
  s.reset();
  EXPECT_FALSE(s.degraded());
  const double f = s.next_slowdown();
  EXPECT_LT(f, 1.2);  // first sample after reset starts in Normal
}

}  // namespace
}  // namespace mb::os
