#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "power/energy.h"
#include "power/top500.h"
#include "support/check.h"

namespace mb::power {
namespace {

TEST(Energy, JoulesArePowerTimesTime) {
  const auto p = arch::snowball();
  EXPECT_DOUBLE_EQ(energy_j(p, 10.0), 25.0);
  EXPECT_THROW(energy_j(p, -1.0), support::Error);
}

TEST(Energy, TableIIRatioIdentity) {
  // energy_ratio = perf_ratio * P_arm / P_xeon; LINPACK's 38.7x maps to
  // ~1.0 under the paper's 2.5 W / 95 W accounting.
  const auto arm = arch::snowball();
  const auto xeon = arch::xeon_x5550();
  const double perf_ratio = 38.7;  // Xeon that much faster
  const double ratio = energy_ratio(arm, perf_ratio, xeon, 1.0);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Energy, CoremarkRowFavorsArm5x) {
  const auto arm = arch::snowball();
  const auto xeon = arch::xeon_x5550();
  const double ratio = energy_ratio(arm, 7.1, xeon, 1.0);
  EXPECT_NEAR(ratio, 0.19, 0.03);  // the paper rounds this to 0.2
}

TEST(Energy, GflopsPerWatt) {
  const auto p = arch::snowball();
  EXPECT_DOUBLE_EQ(gflops_per_watt(p, 0.62), 0.62 / 2.5);
}

TEST(Energy, PeakEfficiencyFavorsEmbedded) {
  EXPECT_GT(peak_efficiency(arch::snowball()),
            0.8 * peak_efficiency(arch::xeon_x5550()));
  // The Exynos5 projection: "even an efficiency of 5 or 7 GFLOPS per Watt
  // would be an accomplishment" — the CPU+GPU SP peak per watt exceeds it.
  EXPECT_GT(projected_efficiency_with_gpu(arch::exynos5()), 5.0);
  EXPECT_LT(projected_efficiency_with_gpu(arch::exynos5()), 30.0);
}

TEST(Energy, SnowballGpuDoesNotCountAsGpgpu) {
  const double with = projected_efficiency_with_gpu(arch::snowball());
  EXPECT_DOUBLE_EQ(with,
                   arch::snowball().peak_sp_gflops() /
                       arch::snowball().power_w);
}

TEST(Top500, SeriesGrowsExponentially) {
  const Top500Model model;
  const auto series = top500_series(model, 1993, 2012);
  EXPECT_EQ(series.size(), 20u);
  EXPECT_GT(series.back().top_gflops, 1e6);   // petaflop era by 2012
  EXPECT_LT(series.back().top_gflops, 1e8);
  // Monotone growth, sum > top > last everywhere.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].top_gflops, series[i - 1].top_gflops);
    EXPECT_GT(series[i].sum_gflops, series[i].top_gflops);
    EXPECT_GT(series[i].top_gflops, series[i].last_gflops);
  }
}

TEST(Top500, ExascaleProjectedLateThisDecade) {
  // Fig. 1: the #1-system fit crosses 1 EFLOPS around 2018-2020.
  const Top500Model model;
  const double year = projected_year_for(model, 1e9);
  EXPECT_GT(year, 2016.0);
  EXPECT_LT(year, 2022.0);
}

TEST(Top500, ExascaleRequires25xEfficiencyJump) {
  // Intro: 50 GFLOPS/W needed; ~2 GFLOPS/W achieved in 2012 -> 25x.
  ExascaleRequirement req;
  EXPECT_DOUBLE_EQ(req.required_efficiency(), 50.0);
  EXPECT_NEAR(req.improvement_over(2.0), 25.0, 1e-12);
  EXPECT_THROW(req.improvement_over(0.0), support::Error);
}

TEST(Top500, SeriesBoundsChecked) {
  const Top500Model model;
  EXPECT_THROW(top500_series(model, 2000, 1999), support::Error);
}

}  // namespace
}  // namespace mb::power

#include "power/cluster_energy.h"

namespace mb::power {
namespace {

TEST(ClusterEnergy, WattsSumNodesAndSwitches) {
  const auto p = arm_cluster_power(18);
  EXPECT_EQ(p.switches, 1u);
  EXPECT_DOUBLE_EQ(cluster_watts(p), 18 * 3.5 + 60.0);
}

TEST(ClusterEnergy, TwoLevelTreeCountsRootSwitch) {
  const auto p = arm_cluster_power(100);
  EXPECT_EQ(p.switches, 4u);  // 3 leaves + root
}

TEST(ClusterEnergy, EeeSwitchesDrawLess) {
  EXPECT_LT(cluster_watts(arm_cluster_power_eee(18)),
            cluster_watts(arm_cluster_power(18)));
}

TEST(ClusterEnergy, EnergyAndRatio) {
  const auto a = arm_cluster_power(18);
  const auto b = arm_cluster_power(18);
  EXPECT_DOUBLE_EQ(cluster_energy_j(a, 2.0), 2.0 * cluster_watts(a));
  EXPECT_DOUBLE_EQ(cluster_energy_ratio(a, 2.0, b, 1.0), 2.0);
  EXPECT_THROW(cluster_energy_j(a, -1.0), support::Error);
  EXPECT_THROW(cluster_energy_ratio(a, 1.0, b, 0.0), support::Error);
}

TEST(ClusterEnergy, NetworkInefficiencyErodesNodeAdvantage) {
  // Sec. IV's closing remark in one assertion: a 2.6x parallel-efficiency
  // loss turns a 0.6x node-level energy win into a cluster-level loss.
  const double node_level_ratio = 0.6;           // Table II BigDFT row
  const double efficiency_loss = 1.0 / 0.38;     // Fig. 3c at 36 cores
  EXPECT_GT(node_level_ratio * efficiency_loss, 1.0);
}

}  // namespace
}  // namespace mb::power

#include "power/dvfs.h"

namespace mb::power {
namespace {

TEST(Dvfs, TimeScalesWithComputeFractionOnly) {
  const auto m = snowball_dvfs();
  DvfsWorkload compute{10.0, 1.0};
  DvfsWorkload memory{10.0, 0.0};
  EXPECT_NEAR(dvfs_seconds(m, compute, 0.5e9), 20.0, 1e-9);
  EXPECT_NEAR(dvfs_seconds(m, memory, 0.5e9), 10.0, 1e-9);
  DvfsWorkload half{10.0, 0.5};
  EXPECT_NEAR(dvfs_seconds(m, half, 0.5e9), 15.0, 1e-9);
}

TEST(Dvfs, PowerIsCubicInFrequency) {
  const auto m = snowball_dvfs();
  EXPECT_NEAR(dvfs_watts(m, 1.0e9), 2.5, 1e-9);  // the paper's number
  EXPECT_NEAR(dvfs_watts(m, 0.5e9), 1.0 + 1.5 / 8.0, 1e-9);
}

TEST(Dvfs, ComputeBoundPrefersHighFrequency) {
  // With significant static power, racing to idle wins on compute-bound
  // work: the optimum sits near f_max.
  const auto m = snowball_dvfs();
  DvfsWorkload w{10.0, 1.0};
  const double f = dvfs_optimal_frequency(m, w);
  EXPECT_GT(f, 0.6e9);
}

TEST(Dvfs, MemoryBoundPrefersLowFrequency) {
  // Memory-bound time does not shrink with f: every extra Hz is wasted
  // dynamic power, so the optimum is f_min.
  const auto m = snowball_dvfs();
  DvfsWorkload w{10.0, 0.0};
  const double f = dvfs_optimal_frequency(m, w);
  EXPECT_NEAR(f, m.f_min_hz, 0.05e9);
}

TEST(Dvfs, OptimumIsActuallyOptimal) {
  const auto m = snowball_dvfs();
  for (const double cf : {0.0, 0.3, 0.7, 1.0}) {
    DvfsWorkload w{5.0, cf};
    const double f_opt = dvfs_optimal_frequency(m, w);
    const double e_opt = dvfs_energy_j(m, w, f_opt);
    for (const double f : {0.2e9, 0.5e9, 0.8e9, 1.2e9})
      EXPECT_LE(e_opt, dvfs_energy_j(m, w, f) + 1e-6) << cf << " " << f;
  }
}

TEST(Dvfs, OptimumMovesDownWithMemoryBoundness) {
  const auto m = snowball_dvfs();
  double prev = 2e9;
  for (const double cf : {1.0, 0.6, 0.3, 0.0}) {
    DvfsWorkload w{5.0, cf};
    const double f = dvfs_optimal_frequency(m, w);
    EXPECT_LE(f, prev + 1e6);
    prev = f;
  }
}

TEST(Dvfs, Validation) {
  DvfsModel bad = snowball_dvfs();
  bad.f_min_hz = 2e9;
  EXPECT_THROW(bad.validate(), support::Error);
  const auto m = snowball_dvfs();
  DvfsWorkload w{1.0, 0.5};
  EXPECT_THROW(dvfs_seconds(m, w, 5e9), support::Error);
}

}  // namespace
}  // namespace mb::power
