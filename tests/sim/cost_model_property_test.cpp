// Property sweeps over the cost model: monotonicity and conservation
// invariants across every platform and operation class.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/platforms.h"
#include "sim/cost_model.h"

namespace mb::sim {
namespace {

using arch::OpClass;

std::vector<arch::Platform> platforms() {
  return arch::all_builtin_platforms();
}

MemoryBehaviour clean(const arch::Platform& p) {
  MemoryBehaviour m;
  m.level.resize(p.caches.size());
  return m;
}

using Case = std::tuple<int, int>;  // platform index, op class index

class CostModelSweep : public ::testing::TestWithParam<Case> {};

TEST_P(CostModelSweep, CyclesMonotoneInOpCount) {
  const auto [pi, ci] = GetParam();
  const auto platform = platforms()[static_cast<std::size_t>(pi)];
  const auto cls = static_cast<OpClass>(ci);
  CostModel cm(platform);
  double prev = 0.0;
  for (std::uint64_t n : {100ull, 1000ull, 10000ull}) {
    InstrMix mix;
    mix.add(cls, n);
    const double cyc = cm.cycles(mix, clean(platform)).total;
    EXPECT_GE(cyc, prev);
    EXPECT_GT(cyc, 0.0);
    prev = cyc;
  }
}

TEST_P(CostModelSweep, DecomposePreservesMetadata) {
  const auto [pi, ci] = GetParam();
  const auto platform = platforms()[static_cast<std::size_t>(pi)];
  const auto cls = static_cast<OpClass>(ci);
  CostModel cm(platform);
  InstrMix mix;
  mix.add(cls, 64);
  mix.flops = 7;
  mix.serialized_loads = 3;
  mix.serialized_fp = 5;
  const InstrMix d = cm.decompose(mix);
  EXPECT_EQ(d.flops, 7u);
  EXPECT_EQ(d.serialized_loads, 3u);
  EXPECT_EQ(d.serialized_fp, 5u);
  // Decomposition never loses work: op count is >= the original.
  EXPECT_GE(d.total_ops(), mix.total_ops());
}

TEST_P(CostModelSweep, DecomposedMixIsFullySupported) {
  const auto [pi, ci] = GetParam();
  const auto platform = platforms()[static_cast<std::size_t>(pi)];
  const auto cls = static_cast<OpClass>(ci);
  CostModel cm(platform);
  InstrMix mix;
  mix.add(cls, 8);
  const InstrMix d = cm.decompose(mix);
  for (std::size_t i = 0; i < arch::kOpClassCount; ++i) {
    const auto c = static_cast<OpClass>(i);
    if (d.count(c) > 0) {
      EXPECT_GT(arch::recip_throughput(platform.core, c), 0.0)
          << arch::op_class_name(c);
    }
  }
}

TEST_P(CostModelSweep, IssueWidthIsALowerBound) {
  const auto [pi, ci] = GetParam();
  const auto platform = platforms()[static_cast<std::size_t>(pi)];
  const auto cls = static_cast<OpClass>(ci);
  CostModel cm(platform);
  InstrMix mix;
  mix.add(cls, 1000);
  const InstrMix d = cm.decompose(mix);
  const double cyc = cm.cycles(mix, clean(platform)).compute_cycles;
  EXPECT_GE(cyc + 1e-9,
            static_cast<double>(d.total_ops()) / platform.core.issue_width);
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsAndClasses, CostModelSweep,
    ::testing::Combine(
        ::testing::Range(0, 4),
        ::testing::Range(0, static_cast<int>(arch::kOpClassCount))),
    [](const auto& info) {
      return "plat" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(arch::op_class_name(
                 static_cast<OpClass>(std::get<1>(info.param))));
    });

}  // namespace
}  // namespace mb::sim
