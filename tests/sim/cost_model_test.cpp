#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::sim {
namespace {

using arch::OpClass;

MemoryBehaviour no_memory_traffic(const arch::Platform& p) {
  MemoryBehaviour m;
  m.level.resize(p.caches.size());
  return m;
}

TEST(CostModel, IssueWidthBoundsThroughput) {
  const auto p = arch::xeon_x5550();
  CostModel cm(p);
  InstrMix mix;
  // 400 cheap int ops on a 4-wide machine: at least 100 cycles.
  mix.add(OpClass::kIntAlu, 400);
  const auto c = cm.cycles(mix, no_memory_traffic(p));
  EXPECT_GE(c.compute_cycles, 100.0);
  EXPECT_LT(c.compute_cycles, 160.0);
}

TEST(CostModel, UnitBoundDominatesWhenSaturated) {
  const auto p = arch::xeon_x5550();
  CostModel cm(p);
  InstrMix mix;
  // 100 loads saturate the single load port: >= 100 cycles even though
  // issue width could sustain 4 ops/cycle.
  mix.add(OpClass::kLoad64, 100);
  const auto c = cm.cycles(mix, no_memory_traffic(p));
  EXPECT_GE(c.compute_cycles, 100.0);
}

TEST(CostModel, DecomposeVecDpOnNeon) {
  // Packed DP is unsupported on the Snowball's NEON; it becomes scalar DP.
  CostModel cm(arch::snowball());
  InstrMix mix;
  mix.add(OpClass::kVecDp, 10);
  const InstrMix d = cm.decompose(mix);
  EXPECT_EQ(d.count(OpClass::kVecDp), 0u);
  EXPECT_EQ(d.count(OpClass::kFpAddDp), 10u);
  EXPECT_EQ(d.count(OpClass::kFpMulDp), 10u);
}

TEST(CostModel, DecomposeVecSpOnTegra2) {
  // Tegra2 has no NEON at all: packed SP decomposes to scalar SP.
  CostModel cm(arch::tegra2_node());
  InstrMix mix;
  mix.add(OpClass::kVecSp, 10);
  const InstrMix d = cm.decompose(mix);
  EXPECT_EQ(d.count(OpClass::kVecSp), 0u);
  EXPECT_EQ(d.count(OpClass::kFpAddSp), 20u);
  EXPECT_EQ(d.count(OpClass::kFpMulSp), 20u);
}

TEST(CostModel, DecomposeWideLoadsOnTegra2) {
  CostModel cm(arch::tegra2_node());
  InstrMix mix;
  mix.add(OpClass::kLoad128, 8);
  const InstrMix d = cm.decompose(mix);
  EXPECT_EQ(d.count(OpClass::kLoad128), 0u);
  EXPECT_EQ(d.count(OpClass::kLoad64), 16u);
}

TEST(CostModel, DecomposeKeepsSupportedClasses) {
  CostModel cm(arch::xeon_x5550());
  InstrMix mix;
  mix.add(OpClass::kVecDp, 10);
  mix.add(OpClass::kLoad128, 7);
  const InstrMix d = cm.decompose(mix);
  EXPECT_EQ(d.count(OpClass::kVecDp), 10u);
  EXPECT_EQ(d.count(OpClass::kLoad128), 7u);
}

TEST(CostModel, DpVectorWorkMuchSlowerOnArm) {
  // The Table II LINPACK asymmetry in miniature: the same packed-DP mix is
  // dramatically more expensive per clock on the A9 than on Nehalem.
  InstrMix mix;
  mix.add(OpClass::kVecDp, 1000);
  const auto pa = arch::snowball();
  const auto px = arch::xeon_x5550();
  const double arm =
      CostModel(pa).cycles(mix, no_memory_traffic(pa)).total;
  const double xeon =
      CostModel(px).cycles(mix, no_memory_traffic(px)).total;
  EXPECT_GT(arm / xeon, 3.0);
}

TEST(CostModel, Int64WorkModeratelySlowerOnArm) {
  // CoreMark/StockFish-style integer work: the per-cycle gap is small.
  InstrMix mix;
  mix.add(OpClass::kIntAlu, 1000);
  const auto pa = arch::snowball();
  const auto px = arch::xeon_x5550();
  const double arm =
      CostModel(pa).cycles(mix, no_memory_traffic(pa)).total;
  const double xeon =
      CostModel(px).cycles(mix, no_memory_traffic(px)).total;
  EXPECT_LT(arm / xeon, 2.0);
}

TEST(CostModel, MemoryLatencyTermScalesWithMisses) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  mix.add(OpClass::kLoad32, 100);

  MemoryBehaviour mem = no_memory_traffic(p);
  mem.level[0].accesses = 100;
  mem.level[0].hits = 100;
  const double fast = cm.cycles(mix, mem).total;

  mem.level[0].hits = 50;
  mem.level[0].misses = 50;
  mem.level[1].accesses = 50;
  mem.level[1].hits = 50;
  const double slow = cm.cycles(mix, mem).total;
  EXPECT_GT(slow, fast);
}

TEST(CostModel, DramLatencyDominatesCacheHit) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  mix.add(OpClass::kLoad32, 10);

  MemoryBehaviour l2_hits = no_memory_traffic(p);
  l2_hits.level[1].hits = 10;

  MemoryBehaviour dram = no_memory_traffic(p);
  dram.memory_accesses = 10;
  dram.memory_bytes = 320;

  EXPECT_GT(cm.cycles(mix, dram).memory_cycles,
            cm.cycles(mix, l2_hits).memory_cycles);
}

TEST(CostModel, BandwidthBoundKicksInForStreaming) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  MemoryBehaviour mem = no_memory_traffic(p);
  // 80 MB of traffic at 0.8 GB/s = 0.1 s = 1e8 cycles at 1 GHz; far more
  // than the latency term for the same number of line fills.
  mem.memory_bytes = 80u << 20;
  mem.memory_accesses = (80u << 20) / 32;
  const auto c = cm.cycles(mix, mem);
  EXPECT_GT(c.memory_cycles, 0.9e8);
}

TEST(CostModel, BandwidthSharersSlowEachCore) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  MemoryBehaviour mem = no_memory_traffic(p);
  mem.memory_bytes = 80u << 20;
  mem.memory_accesses = (80u << 20) / 32;
  const double solo = cm.cycles(mix, mem, 1).memory_cycles;
  const double shared = cm.cycles(mix, mem, 2).memory_cycles;
  EXPECT_NEAR(shared / solo, 2.0, 0.01);
}

TEST(CostModel, MissOverlapHidesLatencyOnNehalem) {
  // The same L2-hit pattern costs relatively less on the deep-OoO Xeon.
  InstrMix mix;
  mix.add(OpClass::kLoad32, 100);
  const auto pa = arch::snowball();
  const auto px = arch::xeon_x5550();

  MemoryBehaviour ma = no_memory_traffic(pa);
  ma.level[1].hits = 100;
  MemoryBehaviour mx = no_memory_traffic(px);
  mx.level[1].hits = 100;

  const double arm_stall = CostModel(pa).cycles(mix, ma).memory_cycles;
  const double xeon_stall = CostModel(px).cycles(mix, mx).memory_cycles;
  // Per-miss stall cycles: ARM exposes 20 * 0.9 = 18; Xeon 10 * 0.35 = 3.5.
  EXPECT_GT(arm_stall / xeon_stall, 3.0);
}

TEST(CostModel, SerializedLoadsExposeL1Latency) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix pipelined;
  pipelined.add(OpClass::kLoad32, 1000);
  InstrMix serialized = pipelined;
  serialized.serialized_loads = 1000;
  const auto mem = no_memory_traffic(p);
  EXPECT_GT(cm.cycles(serialized, mem).total,
            2.0 * cm.cycles(pipelined, mem).total);
}

TEST(CostModel, SerializedFpExposesFpLatency) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix pipelined;
  pipelined.add(OpClass::kFpAddSp, 1000);
  InstrMix serialized = pipelined;
  serialized.serialized_fp = 1000;
  const auto mem = no_memory_traffic(p);
  EXPECT_GT(cm.cycles(serialized, mem).total,
            2.0 * cm.cycles(pipelined, mem).total);
}

TEST(CostModel, ExplicitMispredictsOverrideDefaultRate) {
  const auto p = arch::xeon_x5550();
  CostModel cm(p);
  InstrMix mix;
  mix.add(OpClass::kBranch, 1000);
  const auto mem = no_memory_traffic(p);
  const double default_rate = cm.cycles(mix, mem).branch_cycles;
  mix.mispredicted_branches = 500;
  const double explicit_rate = cm.cycles(mix, mem).branch_cycles;
  EXPECT_GT(explicit_rate, default_rate);
  EXPECT_NEAR(explicit_rate, 500 * p.core.branch_mispredict_penalty, 1.0);
}

TEST(CostModel, TlbMissesCharged) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  MemoryBehaviour mem = no_memory_traffic(p);
  mem.tlb_misses = 10;
  const auto c = cm.cycles(mix, mem);
  EXPECT_DOUBLE_EQ(c.tlb_cycles, 10.0 * p.core.tlb_walk_cycles);
}

TEST(CostModel, TotalIsSumOfTerms) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  mix.add(OpClass::kLoad32, 100);
  mix.add(OpClass::kBranch, 10);
  mix.serialized_loads = 10;
  MemoryBehaviour mem = no_memory_traffic(p);
  mem.level[1].hits = 5;
  mem.tlb_misses = 2;
  const auto c = cm.cycles(mix, mem);
  EXPECT_NEAR(c.total,
              c.compute_cycles + c.dependency_cycles + c.memory_cycles +
                  c.tlb_cycles + c.branch_cycles,
              1e-9);
}

TEST(CostModel, RejectsZeroSharers) {
  const auto p = arch::snowball();
  CostModel cm(p);
  InstrMix mix;
  EXPECT_THROW(cm.cycles(mix, no_memory_traffic(p), 0), support::Error);
}

}  // namespace
}  // namespace mb::sim
