// Property test: the ladder queue dequeues in exactly the order of the
// engine it replaced — a single binary heap over (time, seq) — across
// randomized schedules, including same-timestamp ties and events
// scheduled from inside callbacks. The two implementations run the same
// self-extending scenario side by side; any divergence in execution
// order shows up as a diverging event-id log.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace mb::sim {
namespace {

/// The pre-ladder engine, reconstructed: one std::priority_queue ordered
/// by (time, seq) with insertion-order tie-breaking.
class ReferenceQueue {
 public:
  void schedule_at(double time_s, std::function<void()> cb) {
    pq_.push({time_s, next_seq_});
    cbs_[next_seq_++] = std::move(cb);
  }
  double now() const { return now_; }
  bool step() {
    if (pq_.empty()) return false;
    const auto [time, seq] = pq_.top();
    pq_.pop();
    now_ = time;
    auto it = cbs_.find(seq);
    std::function<void()> cb = std::move(it->second);
    cbs_.erase(it);
    cb();
    return true;
  }
  double run() {
    while (step()) {
    }
    return now_;
  }

 private:
  using Key = std::pair<double, std::uint64_t>;
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    }
  };
  std::priority_queue<Key, std::vector<Key>, Later> pq_;
  std::unordered_map<std::uint64_t, std::function<void()>> cbs_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// Runs one randomized self-extending schedule on a queue: seeds initial
/// events on a quantized time grid (dense ties), and a fraction of
/// callbacks schedule further events relative to now(). The log of
/// (id, fire time) pairs is the observable whose order must match.
template <typename Queue>
struct Driver {
  Queue queue;
  support::Rng rng;
  std::vector<std::pair<std::uint64_t, double>> log;
  std::uint64_t next_id = 0;
  std::uint64_t scheduled = 0;
  int budget;  ///< callback-spawned events remaining

  Driver(std::uint64_t seed, int callback_budget)
      : rng(seed), budget(callback_budget) {}

  double random_delay() {
    // Quantized delays with a fat atom at zero: ties are the norm, not
    // the exception, and a few far-future outliers stress the overflow.
    const std::uint32_t pick = rng.index(10);
    if (pick < 4) return 0.0;
    if (pick < 9) return 1e-6 * static_cast<double>(rng.index(50));
    return 0.25 * static_cast<double>(1 + rng.index(8));
  }

  void spawn(double at) {
    const std::uint64_t id = next_id++;
    ++scheduled;
    const bool fans_out = rng.index(4) == 0;
    queue.schedule_at(at, [this, id, fans_out] {
      log.emplace_back(id, queue.now());
      if (fans_out) {
        for (int c = 0; c < 3 && budget > 0; ++c) {
          --budget;
          spawn(queue.now() + random_delay());
        }
      }
    });
  }

  void seed_initial(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) spawn(random_delay());
  }
};

TEST(EventQueueProperty, MatchesReferenceAcross10kRandomizedSchedules) {
  std::uint64_t total_scheduled = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Driver<EventQueue> ladder(seed, 60);
    Driver<ReferenceQueue> reference(seed, 60);
    ladder.seed_initial(80);
    reference.seed_initial(80);
    ladder.queue.run();
    reference.queue.run();
    ASSERT_EQ(ladder.log, reference.log) << "seed " << seed;
    ASSERT_EQ(ladder.scheduled, reference.scheduled);
    total_scheduled += ladder.scheduled;
  }
  // The satellite contract: at least 10k randomized schedules compared.
  EXPECT_GE(total_scheduled, 10000u);
}

TEST(EventQueueProperty, HeavyTieClusterMatchesReference) {
  // 10k events on a 4-point time grid: nearly everything ties, so the
  // dequeue order is decided almost entirely by insertion sequence.
  Driver<EventQueue> ladder(7, 0);
  Driver<ReferenceQueue> reference(7, 0);
  for (int i = 0; i < 10000; ++i) {
    const double at = 1e-3 * static_cast<double>(i % 4);
    ladder.spawn(at);
    reference.spawn(at);
  }
  ladder.queue.run();
  reference.queue.run();
  ASSERT_EQ(ladder.log, reference.log);
  EXPECT_EQ(ladder.log.size(), 10000u);
}

TEST(EventQueueProperty, HeapModeSpillMatchesReference) {
  // Start tiny (the queue settles into single-heap mode), then a burst
  // from inside a callback grows it far past the spill bound, forcing a
  // rebuild into ladder mode mid-run. Order must survive the migration.
  Driver<EventQueue> ladder(11, 0);
  Driver<ReferenceQueue> reference(11, 0);
  const auto burst = [](auto& d) {
    d.queue.schedule_at(0.0, [&d] {
      support::Rng burst_rng(99);
      for (int i = 0; i < 20000; ++i) {
        const double at =
            1e-6 * static_cast<double>(burst_rng.index(5000));
        d.spawn(d.queue.now() + at);
      }
    });
  };
  for (int i = 0; i < 50; ++i) {
    const double at = 1e-6 * static_cast<double>(i % 5);
    ladder.spawn(at);
    reference.spawn(at);
  }
  burst(ladder);
  burst(reference);
  ladder.queue.run();
  reference.queue.run();
  ASSERT_EQ(ladder.log, reference.log);
  EXPECT_EQ(ladder.log.size(), 20050u);
}

TEST(EventQueueProperty, NextTimeAndRunUntilAgreeWithContents) {
  EventQueue q;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(q.next_time(), kInf);
  int fired = 0;
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_EQ(q.next_time(), 1.0);
  q.run_until(1.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 1.0);
  EXPECT_EQ(q.next_time(), 2.0);
  // Draining past the last event parks now() at the requested horizon.
  q.run_until(5.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 5.0);
}

TEST(EventQueueProperty, RunBeforeIsStrict) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.run_before(2.0);
  EXPECT_EQ(fired, 1);  // the event at exactly the horizon stays queued
  EXPECT_EQ(q.pending(), 1u);
  q.run_before(2.0 + 1e-9);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace mb::sim
