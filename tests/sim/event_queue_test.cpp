#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"

namespace mb::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesResolveInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, StepExecutesOne) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), support::Error);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), support::Error);
}

TEST(EventQueue, EmptyCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, EventQueue::Callback{}), support::Error);
}

TEST(EventQueue, ExecutedCountAccumulates) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 5u);
}

}  // namespace
}  // namespace mb::sim
