#include "sim/instr_mix.h"

#include <gtest/gtest.h>

namespace mb::sim {
namespace {

using arch::OpClass;

TEST(InstrMix, StartsEmpty) {
  InstrMix m;
  EXPECT_EQ(m.total_ops(), 0u);
  EXPECT_EQ(m.flops, 0u);
  EXPECT_FALSE(m.mispredicted_branches.has_value());
}

TEST(InstrMix, AddAccumulates) {
  InstrMix m;
  m.add(OpClass::kIntAlu, 10);
  m.add(OpClass::kIntAlu, 5);
  EXPECT_EQ(m.count(OpClass::kIntAlu), 15u);
  EXPECT_EQ(m.total_ops(), 15u);
}

TEST(InstrMix, LoadStoreTotals) {
  InstrMix m;
  m.add(OpClass::kLoad32, 1);
  m.add(OpClass::kLoad64, 2);
  m.add(OpClass::kLoad128, 3);
  m.add(OpClass::kStore32, 4);
  m.add(OpClass::kStore64, 5);
  EXPECT_EQ(m.total_loads(), 6u);
  EXPECT_EQ(m.total_stores(), 9u);
}

TEST(InstrMix, FpAndVecTotals) {
  InstrMix m;
  m.add(OpClass::kFpAddDp, 2);
  m.add(OpClass::kFpMulSp, 3);
  m.add(OpClass::kVecSp, 4);
  EXPECT_EQ(m.total_fp_scalar(), 5u);
  EXPECT_EQ(m.total_vec(), 4u);
}

TEST(InstrMix, PlusEqualsMergesEverything) {
  InstrMix a, b;
  a.add(OpClass::kIntAlu, 1);
  a.flops = 10;
  a.serialized_loads = 3;
  b.add(OpClass::kIntAlu, 2);
  b.add(OpClass::kBranch, 7);
  b.flops = 20;
  b.serialized_fp = 4;
  b.mispredicted_branches = 2;
  a += b;
  EXPECT_EQ(a.count(OpClass::kIntAlu), 3u);
  EXPECT_EQ(a.count(OpClass::kBranch), 7u);
  EXPECT_EQ(a.flops, 30u);
  EXPECT_EQ(a.serialized_loads, 3u);
  EXPECT_EQ(a.serialized_fp, 4u);
  ASSERT_TRUE(a.mispredicted_branches.has_value());
  EXPECT_EQ(*a.mispredicted_branches, 2u);
}

TEST(InstrMix, MergeWithoutMispredictsKeepsAbsent) {
  InstrMix a, b;
  a += b;
  EXPECT_FALSE(a.mispredicted_branches.has_value());
}

}  // namespace
}  // namespace mb::sim
