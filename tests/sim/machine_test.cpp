#include "sim/machine.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "counters/counters.h"

namespace mb::sim {
namespace {

using arch::OpClass;
using counters::Counter;

Machine snowball_machine(PagePolicy policy = PagePolicy::kConsecutive,
                         std::uint64_t seed = 1) {
  return Machine(arch::snowball(), policy, support::Rng(seed));
}

TEST(Machine, TouchPopulatesCaches) {
  auto m = snowball_machine();
  const auto r = m.mmap(4096);
  m.begin_measurement();
  m.touch(r.vaddr, 4, false);
  m.touch(r.vaddr, 4, false);
  const auto stats = m.hierarchy().stats();
  EXPECT_EQ(stats.level[0].accesses, 2u);
  EXPECT_EQ(stats.level[0].hits, 1u);
}

TEST(Machine, TouchSplitsAtPageBoundary) {
  auto m = snowball_machine();
  const auto r = m.mmap(2 * 4096);
  m.begin_measurement();
  // 8 bytes straddling the page boundary must translate both pages.
  EXPECT_NO_THROW(m.touch(r.vaddr + 4092, 8, false));
  const auto stats = m.hierarchy().stats();
  EXPECT_GE(stats.level[0].accesses, 2u);
}

TEST(Machine, EndMeasurementProducesCounters) {
  auto m = snowball_machine();
  const auto r = m.mmap(4096);
  m.begin_measurement();
  for (int i = 0; i < 64; ++i)
    m.touch(r.vaddr + static_cast<std::uint64_t>(i) * 4, 4, false);
  InstrMix mix;
  mix.add(OpClass::kLoad32, 64);
  mix.add(OpClass::kIntAlu, 64);
  mix.flops = 0;
  const SimResult res = m.end_measurement(mix);
  EXPECT_GT(res.breakdown.total, 0.0);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_EQ(res.counters.get(Counter::kL1Dca), 64u);
  EXPECT_EQ(res.counters.get(Counter::kTotIns), 128u);
  EXPECT_GT(res.counters.get(Counter::kL1Dcm), 0u);
}

TEST(Machine, MeasurementIntervalsAreIsolated) {
  auto m = snowball_machine();
  const auto r = m.mmap(4096);
  m.begin_measurement();
  m.touch(r.vaddr, 4, false);
  m.begin_measurement();  // resets stats
  const auto stats = m.hierarchy().stats();
  EXPECT_EQ(stats.level[0].accesses, 0u);
}

TEST(Machine, FlushCachesForcesColdMisses) {
  auto m = snowball_machine();
  const auto r = m.mmap(4096);
  m.touch(r.vaddr, 4, false);
  m.flush_caches();
  m.begin_measurement();
  m.touch(r.vaddr, 4, false);
  EXPECT_EQ(m.hierarchy().stats().level[0].misses, 1u);
}

TEST(Machine, ConsecutivePolicyGivesContiguousFrames) {
  auto m = snowball_machine(PagePolicy::kConsecutive);
  const auto r = m.mmap(8 * 4096);
  const auto frames = m.address_space().frames_of(r);
  for (std::size_t i = 1; i < frames.size(); ++i)
    EXPECT_EQ(frames[i], frames[i - 1] + 1);
}

TEST(Machine, RandomPolicyScattersFrames) {
  auto m = snowball_machine(PagePolicy::kRandom, 99);
  const auto r = m.mmap(8 * 4096);
  const auto frames = m.address_space().frames_of(r);
  bool scattered = false;
  for (std::size_t i = 1; i < frames.size(); ++i)
    if (frames[i] != frames[i - 1] + 1) scattered = true;
  EXPECT_TRUE(scattered);
}

TEST(Machine, PagePolicyNames) {
  EXPECT_EQ(page_policy_name(PagePolicy::kConsecutive), "consecutive");
  EXPECT_EQ(page_policy_name(PagePolicy::kReuseBiased), "reuse-biased");
  EXPECT_EQ(page_policy_name(PagePolicy::kRandom), "random");
}

TEST(Machine, BandwidthSharersPropagate) {
  auto m = snowball_machine();
  const auto r = m.mmap(64 * 4096);
  m.begin_measurement();
  // Stream enough data to hit the bandwidth bound.
  for (std::uint64_t a = 0; a < 64 * 4096; a += 32)
    m.touch(r.vaddr + a, 4, false);
  InstrMix mix;
  mix.add(OpClass::kLoad32, 64 * 4096 / 32);
  const double solo = m.end_measurement(mix, 1).breakdown.memory_cycles;
  const double duo = m.end_measurement(mix, 2).breakdown.memory_cycles;
  EXPECT_GT(duo, solo);
}

}  // namespace
}  // namespace mb::sim
