#include "sim/roofline.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "kernels/linpack.h"
#include "kernels/membench.h"
#include "support/check.h"

namespace mb::sim {
namespace {

TEST(Roofline, AttainableIsMinOfRoofs) {
  Roofline r;
  r.peak_gflops = 40.0;
  r.bandwidth_gbs = 10.0;
  EXPECT_DOUBLE_EQ(r.ridge_intensity(), 4.0);
  EXPECT_DOUBLE_EQ(r.attainable(1.0), 10.0);   // memory roof
  EXPECT_DOUBLE_EQ(r.attainable(100.0), 40.0); // compute roof
  EXPECT_DOUBLE_EQ(r.attainable(4.0), 40.0);   // the ridge
  EXPECT_THROW(r.attainable(0.0), support::Error);
}

TEST(Roofline, PlatformRoofsFromDescriptors) {
  const auto xeon = dp_roofline(arch::xeon_x5550());
  EXPECT_NEAR(xeon.peak_gflops, 42.6, 0.5);
  EXPECT_NEAR(xeon.bandwidth_gbs, 16.0, 0.1);
  const auto arm = dp_roofline(arch::snowball());
  EXPECT_LT(arm.peak_gflops, 3.0);
  EXPECT_NEAR(arm.bandwidth_gbs, 0.8, 0.01);
  // SP roofs are higher than DP on both.
  EXPECT_GT(sp_roofline(arch::xeon_x5550()).peak_gflops, xeon.peak_gflops);
  EXPECT_GT(sp_roofline(arch::snowball()).peak_gflops, arm.peak_gflops);
}

TEST(Roofline, LinpackIsComputeBound) {
  const auto platform = arch::snowball();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::LinpackParams p;
  p.n = 96;
  p.block = 32;
  const auto run = kernels::linpack_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "linpack",
                                       run.sim, platform.cores);
  EXPECT_FALSE(point.memory_bound);  // blocked LU has high intensity
  EXPECT_GT(point.roofline_fraction, 0.05);
  EXPECT_LE(point.roofline_fraction, 1.0 + 1e-9);
}

TEST(Roofline, StreamingMembenchIsMemoryBound) {
  const auto platform = arch::snowball();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::MembenchParams p;
  p.array_bytes = 4 * 1024 * 1024;  // DRAM resident
  p.elem_bits = 64;
  p.unroll = 8;
  p.passes = 2;
  const auto run = kernels::membench_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "membench",
                                       run.sim, platform.cores);
  EXPECT_TRUE(point.memory_bound);
  EXPECT_LT(point.intensity, 1.0);  // ~1 flop per 8 bytes streamed
}

TEST(Roofline, AchievedNeverExceedsAttainableGrossly) {
  // The cost model should keep achieved rates at or below the roofline
  // (small excursions possible because intensity uses DRAM traffic only).
  const auto platform = arch::xeon_x5550();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::MembenchParams p;
  p.array_bytes = 8 * 1024 * 1024;
  p.elem_bits = 128;
  p.unroll = 8;
  p.passes = 2;
  p.bandwidth_sharers = platform.cores;
  const auto run = kernels::membench_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "membench",
                                       run.sim, platform.cores);
  EXPECT_LE(point.roofline_fraction, 1.05);
}

TEST(Roofline, RequiresFlopsAndDuration) {
  const auto platform = arch::snowball();
  SimResult empty;
  EXPECT_THROW(place_on_roofline(dp_roofline(platform), "x", empty, 1),
               support::Error);
}

}  // namespace
}  // namespace mb::sim
