#include "sim/roofline.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "kernels/linpack.h"
#include "kernels/membench.h"
#include "support/check.h"

namespace mb::sim {
namespace {

TEST(Roofline, AttainableIsMinOfRoofs) {
  Roofline r;
  r.peak_gflops = 40.0;
  r.bandwidth_gbs = 10.0;
  EXPECT_DOUBLE_EQ(r.ridge_intensity(), 4.0);
  EXPECT_DOUBLE_EQ(r.attainable(1.0), 10.0);   // memory roof
  EXPECT_DOUBLE_EQ(r.attainable(100.0), 40.0); // compute roof
  EXPECT_DOUBLE_EQ(r.attainable(4.0), 40.0);   // the ridge
  EXPECT_THROW(r.attainable(0.0), support::Error);
}

TEST(Roofline, PlatformRoofsFromDescriptors) {
  const auto xeon = dp_roofline(arch::xeon_x5550());
  EXPECT_NEAR(xeon.peak_gflops, 42.6, 0.5);
  EXPECT_NEAR(xeon.bandwidth_gbs, 16.0, 0.1);
  const auto arm = dp_roofline(arch::snowball());
  EXPECT_LT(arm.peak_gflops, 3.0);
  EXPECT_NEAR(arm.bandwidth_gbs, 0.8, 0.01);
  // SP roofs are higher than DP on both.
  EXPECT_GT(sp_roofline(arch::xeon_x5550()).peak_gflops, xeon.peak_gflops);
  EXPECT_GT(sp_roofline(arch::snowball()).peak_gflops, arm.peak_gflops);
}

TEST(Roofline, LinpackIsComputeBound) {
  const auto platform = arch::snowball();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::LinpackParams p;
  p.n = 96;
  p.block = 32;
  const auto run = kernels::linpack_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "linpack",
                                       run.sim, platform.cores);
  EXPECT_FALSE(point.memory_bound);  // blocked LU has high intensity
  EXPECT_GT(point.roofline_fraction, 0.05);
  EXPECT_LE(point.roofline_fraction, 1.0 + 1e-9);
}

TEST(Roofline, StreamingMembenchIsMemoryBound) {
  const auto platform = arch::snowball();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::MembenchParams p;
  p.array_bytes = 4 * 1024 * 1024;  // DRAM resident
  p.elem_bits = 64;
  p.unroll = 8;
  p.passes = 2;
  const auto run = kernels::membench_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "membench",
                                       run.sim, platform.cores);
  EXPECT_TRUE(point.memory_bound);
  EXPECT_LT(point.intensity, 1.0);  // ~1 flop per 8 bytes streamed
}

TEST(Roofline, AchievedNeverExceedsAttainableGrossly) {
  // The cost model should keep achieved rates at or below the roofline
  // (small excursions possible because intensity uses DRAM traffic only).
  const auto platform = arch::xeon_x5550();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::MembenchParams p;
  p.array_bytes = 8 * 1024 * 1024;
  p.elem_bits = 128;
  p.unroll = 8;
  p.passes = 2;
  p.bandwidth_sharers = platform.cores;
  const auto run = kernels::membench_run(m, p);
  const auto point = place_on_roofline(dp_roofline(platform), "membench",
                                       run.sim, platform.cores);
  EXPECT_LE(point.roofline_fraction, 1.05);
}

TEST(Roofline, RequiresFlopsAndDuration) {
  const auto platform = arch::snowball();
  SimResult empty;
  EXPECT_THROW(place_on_roofline(dp_roofline(platform), "x", empty, 1),
               support::Error);
}

TEST(HierarchicalRoofline, LevelsRunInnerToDramWithFallingBandwidth) {
  const auto hier = hierarchical_dp_roofline(arch::tegra2_node());
  ASSERT_EQ(hier.levels.size(), 3u);  // L1d, L2, DRAM
  EXPECT_EQ(hier.levels.front().name, "L1d");
  EXPECT_EQ(hier.levels.back().name, "DRAM");
  EXPECT_EQ(hier.levels.back().capacity_bytes, 0u);  // unbounded
  for (std::size_t i = 0; i + 1 < hier.levels.size(); ++i)
    EXPECT_GT(hier.levels[i].bandwidth_gbs,
              hier.levels[i + 1].bandwidth_gbs);
}

TEST(HierarchicalRoofline, WorkingSetSelectsTheServingLevel) {
  const auto hier = hierarchical_dp_roofline(arch::tegra2_node());
  EXPECT_EQ(hier.level_for_working_set(4 * 1024).name, "L1d");
  EXPECT_EQ(hier.level_for_working_set(256 * 1024).name, "L2");
  EXPECT_EQ(hier.level_for_working_set(64u << 20).name, "DRAM");
}

TEST(HierarchicalRoofline, VectorSpeedupReflectsTheDatapath) {
  // Nehalem has SSE2 packed double: the DP hierarchy grows a vector roof
  // above scalar issue. Tegra2's NEON is SP-only, so DP stays scalar.
  const auto xeon = hierarchical_dp_roofline(arch::xeon_x5550());
  EXPECT_GT(xeon.vector_speedup(), 1.0);
  EXPECT_GT(xeon.peak().gflops, xeon.scalar().gflops);
  EXPECT_EQ(xeon.compute.front().vector_bits, 0u);  // scalar first

  const auto tegra = hierarchical_dp_roofline(arch::tegra2_node());
  EXPECT_DOUBLE_EQ(tegra.vector_speedup(), 1.0);
  EXPECT_DOUBLE_EQ(tegra.peak().gflops, tegra.scalar().gflops);
}

TEST(HierarchicalRoofline, StreamingRunBindsToDramBandwidth) {
  const auto platform = arch::tegra2_node();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::MembenchParams p;
  p.array_bytes = 4 * 1024 * 1024;  // DRAM resident
  p.elem_bits = 64;
  p.unroll = 8;
  p.passes = 2;
  const auto run = kernels::membench_run(m, p);
  const auto point =
      place_on_hierarchy(hierarchical_dp_roofline(platform), "membench",
                         run.sim, platform.cores, p.array_bytes,
                         /*vectorized=*/false);
  EXPECT_TRUE(point.memory_bound);
  EXPECT_EQ(point.bound_by, "DRAM bandwidth");
  // Memory bound: the vector unit cannot help, so no headroom claimed.
  EXPECT_DOUBLE_EQ(point.vector_headroom, 1.0);
}

TEST(HierarchicalRoofline, ComputeBoundScalarRunReportsVectorHeadroom) {
  const auto platform = arch::xeon_x5550();
  Machine m(platform, PagePolicy::kConsecutive, support::Rng(1));
  kernels::LinpackParams p;
  p.n = 96;
  p.block = 32;  // cache-blocked LU: high intensity, compute bound
  const auto run = kernels::linpack_run(m, p);
  const auto hier = hierarchical_dp_roofline(platform);
  const auto scalar = place_on_hierarchy(
      hier, "linpack", run.sim, platform.cores,
      static_cast<std::uint64_t>(p.n) * p.n * 8, /*vectorized=*/false);
  EXPECT_FALSE(scalar.memory_bound);
  EXPECT_GT(scalar.vector_headroom, 1.0);
  // The same run flagged as already vectorized has nothing left to gain.
  const auto vec = place_on_hierarchy(
      hier, "linpack", run.sim, platform.cores,
      static_cast<std::uint64_t>(p.n) * p.n * 8, /*vectorized=*/true);
  EXPECT_DOUBLE_EQ(vec.vector_headroom, 1.0);
}

}  // namespace
}  // namespace mb::sim
