// Conservative-lookahead engine: determinism across worker counts, the
// lookahead safety check, window accounting and configuration guards.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/check.h"

namespace mb::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ShardedEngine, SingleShardRunsLikeSerialEngine) {
  ShardedEngine engine(4);
  engine.configure({0, 0, 0}, 1, kInf);
  std::vector<int> order;
  engine.schedule(2, 2.0, [&] { order.push_back(2); });
  engine.schedule(0, 1.0, [&] {
    order.push_back(1);
    engine.schedule(1, engine.now() + 0.5, [&] { order.push_back(3); });
  });
  const double end = engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(end, 2.0);
  EXPECT_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.shards(), 1u);
  EXPECT_EQ(engine.stats().executed, 3u);
  EXPECT_EQ(engine.stats().scheduled, 3u);
}

/// Cross-shard ping-pong: node 0 lives in shard 0, node 1 in shard 1,
/// lookahead L. Each hop schedules the next at exactly now + L — the
/// tightest legal cross-shard event. The per-shard logs must come out
/// identical for every worker count (each shard's log is only ever
/// touched by its owning worker, so recording is race-free).
std::pair<std::vector<double>, std::vector<double>> ping_pong(
    std::uint32_t jobs, int hops) {
  constexpr double kLookahead = 1e-3;
  ShardedEngine engine(jobs);
  engine.configure({0, 1}, 2, kLookahead);
  std::vector<double> log0;
  std::vector<double> log1;
  // SmallFn is not recursive-friendly through std::function; drive the
  // chain with a self-scheduling struct instead.
  struct Bouncer {
    ShardedEngine& engine;
    std::vector<double>& log0;
    std::vector<double>& log1;
    int remaining;
    void hop(std::uint32_t node, double at) {
      engine.schedule(node, at, [this, node] {
        (node == 0 ? log0 : log1).push_back(engine.now());
        if (--remaining > 0) hop(node ^ 1, engine.now() + kLookahead);
      });
    }
  };
  Bouncer bouncer{engine, log0, log1, hops};
  bouncer.hop(0, 0.0);
  engine.run_all();
  EXPECT_EQ(log0.size() + log1.size(), static_cast<std::size_t>(hops));
  EXPECT_GT(engine.windows(), 0u);
  EXPECT_EQ(engine.workers(), std::min(jobs, 2u));
  return {log0, log1};
}

TEST(ShardedEngine, CrossShardPingPongIdenticalAcrossWorkerCounts) {
  const auto serial = ping_pong(1, 64);
  for (const std::uint32_t jobs : {2u, 4u, 8u}) {
    const auto parallel = ping_pong(jobs, 64);
    EXPECT_EQ(parallel.first, serial.first) << "jobs=" << jobs;
    EXPECT_EQ(parallel.second, serial.second) << "jobs=" << jobs;
  }
}

TEST(ShardedEngine, CrossShardScheduleInsideLookaheadWindowThrows) {
  ShardedEngine engine(2);
  engine.configure({0, 1}, 2, 1.0);
  engine.schedule(0, 0.0, [&] {
    // A model bug: reaching into the other shard sooner than any
    // cross-shard link could deliver. The engine must fail loudly, not
    // silently misorder.
    engine.schedule(1, engine.now() + 0.25, [] {});
  });
  EXPECT_THROW(engine.run_all(), support::Error);
}

TEST(ShardedEngine, StatsSumOverShards) {
  ShardedEngine engine(2);
  engine.configure({0, 1}, 2, 0.5);
  // The two shards run on different workers, so the shared counter must
  // be atomic (relaxed is enough: run_all() joins before the read).
  std::atomic<int> fired{0};
  for (std::uint32_t node = 0; node < 2; ++node) {
    engine.schedule(node, 0.1,
                    [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
    engine.schedule(node, 0.2,
                    [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
  }
  engine.run_all();
  EXPECT_EQ(fired.load(), 4);
  const SchedulerStats stats = engine.stats();
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.scheduled, 4u);
  EXPECT_TRUE(engine.parallel());
}

TEST(ShardedEngine, ConfigureGuards) {
  ShardedEngine engine(2);
  EXPECT_THROW(engine.run_all(), support::Error);  // not configured
  EXPECT_THROW(engine.configure({0}, 1, 0.0), support::Error);
  EXPECT_THROW(engine.configure({3}, 2, 1.0), support::Error);
  engine.configure({0, 1}, 2, 1.0);
  EXPECT_THROW(engine.configure({0, 1}, 2, 1.0), support::Error);
  EXPECT_EQ(engine.shard_of(1), 1u);
  EXPECT_THROW(engine.shard_of(7), support::Error);
}

}  // namespace
}  // namespace mb::sim
