#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"

namespace mb::stats {
namespace {

TEST(Descriptive, MeanOfConstants) {
  std::vector<double> v{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Descriptive, KnownVariance) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sum of squared deviations = 32; unbiased variance = 32/7.
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, MedianOddAndEven) {
  std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, PercentileEndpoints) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Descriptive, PercentileSingleSample) {
  std::vector<double> v{7};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 73), 7.0);
}

TEST(Descriptive, SummaryQuartiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q1, 26.0);
  EXPECT_DOUBLE_EQ(s.q3, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(Descriptive, CiShrinksWithSampleSize) {
  std::vector<double> small{1, 2, 3, 4};
  std::vector<double> big;
  for (int r = 0; r < 100; ++r)
    for (double x : small) big.push_back(x);
  EXPECT_GT(ci_halfwidth(small), ci_halfwidth(big));
}

TEST(Descriptive, CiZeroForSingleSample) {
  std::vector<double> v{42};
  EXPECT_DOUBLE_EQ(ci_halfwidth(v), 0.0);
}

TEST(Descriptive, CvIsRelative) {
  std::vector<double> a{9, 10, 11};
  std::vector<double> b{90, 100, 110};
  EXPECT_NEAR(cv(a), cv(b), 1e-12);
}

TEST(Descriptive, GeomeanOfPowers) {
  std::vector<double> v{1, 4, 16};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Descriptive, GeomeanRejectsNonPositive) {
  std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(geomean(v), support::Error);
}

TEST(Descriptive, EmptyInputsThrow) {
  std::vector<double> empty;
  EXPECT_THROW(mean(empty), support::Error);
  EXPECT_THROW(summarize(empty), support::Error);
  EXPECT_THROW(percentile(empty, 50), support::Error);
}

TEST(Descriptive, PercentileRangeChecked) {
  std::vector<double> v{1, 2};
  EXPECT_THROW(percentile(v, -1), support::Error);
  EXPECT_THROW(percentile(v, 101), support::Error);
}

}  // namespace
}  // namespace mb::stats
