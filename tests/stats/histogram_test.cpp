#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"

namespace mb::stats {
namespace {

TEST(Histogram, BinsCountsCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(5.0);   // bin 5
  h.add(5.1);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 4.0, 4);
  std::vector<double> xs{0.1, 1.1, 2.1, 3.1};
  h.add_all(xs);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.count(b), 1u);
}

TEST(Histogram, RenderShowsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
}

TEST(Histogram, Preconditions) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), support::Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), support::Error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), support::Error);
  EXPECT_THROW(h.bin_center(5), support::Error);
}

}  // namespace
}  // namespace mb::stats
