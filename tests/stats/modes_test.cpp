#include "stats/modes.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"

namespace mb::stats {
namespace {

TEST(Modes, DetectsWellSeparatedModes) {
  support::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal(1.0, 0.02));
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal(5.0, 0.10));
  const ModeSplit s = split_modes(xs);
  EXPECT_TRUE(s.bimodal);
  EXPECT_NEAR(s.low_center, 1.0, 0.1);
  EXPECT_NEAR(s.high_center, 5.0, 0.2);
  EXPECT_EQ(s.low_indices.size(), 50u);
  EXPECT_EQ(s.high_indices.size(), 50u);
}

TEST(Modes, UnimodalIsNotBimodal) {
  support::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(3.0, 0.5));
  const ModeSplit s = split_modes(xs);
  EXPECT_FALSE(s.bimodal);
}

TEST(Modes, TinyClusterBelowFractionIsNotBimodal) {
  support::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(1.0, 0.01));
  xs.push_back(100.0);  // one outlier, 0.5% of samples
  const ModeSplit s = split_modes(xs, 3.0, /*min_fraction=*/0.05);
  EXPECT_FALSE(s.bimodal);
}

TEST(Modes, StatisticallySeparatedButCloseCentersAreNotModes) {
  // Two extremely tight clusters 2% apart: separated in sigma terms but
  // not execution modes (the min_ratio criterion).
  support::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(1.00, 0.0005));
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(1.02, 0.0005));
  EXPECT_FALSE(split_modes(xs).bimodal);
  // With the ratio criterion relaxed they do split.
  EXPECT_TRUE(split_modes(xs, 3.0, 0.05, 1.01).bimodal);
}

TEST(Modes, ConstantSamplesHandled) {
  std::vector<double> xs(10, 7.0);
  const ModeSplit s = split_modes(xs);
  EXPECT_FALSE(s.bimodal);
  EXPECT_DOUBLE_EQ(s.low_center, 7.0);
}

TEST(Modes, FiveToOneRatioLikePaperFigure5) {
  // Paper Fig. 5: degraded mode bandwidth ~5x lower than normal mode.
  support::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 160; ++i) xs.push_back(rng.normal(1.05, 0.03));
  for (int i = 0; i < 40; ++i) xs.push_back(rng.normal(0.21, 0.01));
  const ModeSplit s = split_modes(xs);
  ASSERT_TRUE(s.bimodal);
  EXPECT_NEAR(s.high_center / s.low_center, 5.0, 0.5);
}

TEST(CountRuns, SingleRun) {
  std::vector<std::size_t> idx{4, 5, 6, 7};
  EXPECT_EQ(count_runs(idx), 1u);
}

TEST(CountRuns, ScatteredIndices) {
  std::vector<std::size_t> idx{1, 3, 5, 7};
  EXPECT_EQ(count_runs(idx), 4u);
}

TEST(CountRuns, Empty) {
  std::vector<std::size_t> idx;
  EXPECT_EQ(count_runs(idx), 0u);
}

TEST(TemporalClustering, ConsecutiveBlockIsClustered) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 100; i < 140; ++i) idx.push_back(i);
  EXPECT_TRUE(is_temporally_clustered(idx, 400));
}

TEST(TemporalClustering, UniformScatterIsNot) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 400; i += 10) idx.push_back(i);
  EXPECT_FALSE(is_temporally_clustered(idx, 400));
}

TEST(TemporalClustering, TooFewSamples) {
  std::vector<std::size_t> idx{5};
  EXPECT_FALSE(is_temporally_clustered(idx, 100));
}

}  // namespace
}  // namespace mb::stats
