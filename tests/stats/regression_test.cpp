#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/check.h"

namespace mb::stats {
namespace {

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys{1, 3, 5, 7};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2) ? 0.1 : -0.1));
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_GT(f.r2, 0.999);
}

TEST(LinearFit, ConstantYGivesZeroSlope) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{4, 4, 4};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);  // degenerate ss_tot -> defined as 1
}

TEST(LinearFit, Preconditions) {
  std::vector<double> one{1};
  std::vector<double> same_x{2, 2, 2};
  std::vector<double> ys3{1, 2, 3};
  EXPECT_THROW(fit_linear(one, one), support::Error);
  EXPECT_THROW(fit_linear(same_x, ys3), support::Error);
}

TEST(ExponentialFit, RecoversGrowthRate) {
  // Doubling every unit of x: y = 3 * 2^x = 3 * exp(x ln 2).
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * std::pow(2.0, i));
  }
  const ExponentialFit f = fit_exponential(xs, ys);
  EXPECT_NEAR(f.a, 3.0, 1e-9);
  EXPECT_NEAR(f.b, std::log(2.0), 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(ExponentialFit, EvaluateAndInvert) {
  ExponentialFit f;
  f.a = 2.0;
  f.b = 0.5;
  EXPECT_NEAR(f(0.0), 2.0, 1e-12);
  const double x = f.solve_for_x(20.0);
  EXPECT_NEAR(f(x), 20.0, 1e-9);
}

TEST(ExponentialFit, RejectsNonPositiveY) {
  std::vector<double> xs{0, 1};
  std::vector<double> ys{1, -1};
  EXPECT_THROW(fit_exponential(xs, ys), support::Error);
}

}  // namespace
}  // namespace mb::stats
