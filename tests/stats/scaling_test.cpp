#include "stats/scaling.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"

namespace mb::stats {
namespace {

TEST(Scaling, IdealScalingHasUnitEfficiency) {
  std::vector<int> cores{1, 2, 4, 8};
  std::vector<double> times{8.0, 4.0, 2.0, 1.0};
  const auto s = strong_scaling(cores, times);
  for (const auto& p : s) {
    EXPECT_DOUBLE_EQ(p.efficiency, 1.0);
    EXPECT_DOUBLE_EQ(p.speedup, static_cast<double>(p.cores));
  }
}

TEST(Scaling, NonUnitBaselineLikeSpecfem) {
  // Paper Fig. 3b: SPECFEM3D speedup is versus a 4-core run because the
  // instance does not fit one node; ideal remains the y = x diagonal.
  std::vector<int> cores{4, 8, 16};
  std::vector<double> times{100.0, 50.0, 25.0};
  const auto s = strong_scaling(cores, times);
  EXPECT_DOUBLE_EQ(s[0].speedup, 4.0);
  EXPECT_DOUBLE_EQ(s[2].speedup, 16.0);
  EXPECT_DOUBLE_EQ(s[2].efficiency, 1.0);
}

TEST(Scaling, SaturatingCurveLosesEfficiency) {
  std::vector<int> cores{1, 2, 4, 8};
  std::vector<double> times{8.0, 4.4, 2.6, 1.9};
  const auto s = strong_scaling(cores, times);
  EXPECT_LT(final_efficiency(s), 0.6);
  EXPECT_GT(final_efficiency(s), 0.4);
}

TEST(Scaling, TailLinearityDetectsLinearTail) {
  std::vector<int> cores{1, 2, 4, 8, 16, 32, 64, 96};
  std::vector<double> times;
  for (int c : cores) {
    // Perfectly linear speedup with slope 0.8 after a constant offset.
    const double speedup = 0.8 * c + 0.5;
    times.push_back(100.0 / speedup);
  }
  const auto s = strong_scaling(cores, times);
  EXPECT_TRUE(tail_is_linear(s, 8));
}

TEST(Scaling, TailLinearityRejectsSaturation) {
  std::vector<int> cores{1, 2, 4, 8, 16, 32, 64, 96};
  std::vector<double> times;
  for (int c : cores) {
    const double speedup = 12.0 * c / (c + 11.0);  // Amdahl-like saturation
    times.push_back(100.0 / speedup);
  }
  const auto s = strong_scaling(cores, times);
  EXPECT_FALSE(tail_is_linear(s, 8));
}

TEST(Scaling, TooFewTailPointsIsNotLinear) {
  std::vector<int> cores{1, 2, 64};
  std::vector<double> times{64.0, 32.0, 1.0};
  const auto s = strong_scaling(cores, times);
  EXPECT_FALSE(tail_is_linear(s, 32));
}

TEST(Scaling, Preconditions) {
  std::vector<int> cores{1, 2};
  std::vector<double> bad_len{1.0};
  EXPECT_THROW(strong_scaling(cores, bad_len), support::Error);
  std::vector<double> zero_time{0.0, 1.0};
  EXPECT_THROW(strong_scaling(cores, zero_time), support::Error);
}

}  // namespace
}  // namespace mb::stats
