// Arena / Pool: alignment, chunk growth, reset reuse, free-list
// recycling, and the thread-safe pool variant under concurrent churn.
#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace mb::support {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  std::vector<void*> ptrs;
  for (const std::size_t align : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.allocate(24, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
      std::memset(p, 0xAB, 24);  // must be writable storage
      ptrs.push_back(p);
    }
  }
  // Distinct live allocations never alias.
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    for (std::size_t j = i + 1; j < ptrs.size(); ++j)
      EXPECT_NE(ptrs[i], ptrs[j]);
  EXPECT_GE(arena.bytes_allocated(), 24u * ptrs.size());
}

TEST(Arena, GrowsChunksWhenExhaustedAndOversizedRequestsWork) {
  Arena arena(256);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_GT(arena.chunks(), 1u);
  // A request bigger than the chunk granularity still succeeds.
  void* big = arena.allocate(4096, 8);
  std::memset(big, 0, 4096);
}

TEST(Arena, ResetRecyclesTheFirstChunk) {
  Arena arena(256);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.chunks(), 1u);  // first chunk kept for reuse
  void* p = arena.allocate(32, 8);
  std::memset(p, 0, 32);
}

TEST(Arena, CreateConstructsInPlace) {
  Arena arena;
  struct Point {
    int x, y;
  };
  Point* p = arena.create<Point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Pool, RecyclesReleasedSlots) {
  Pool<std::uint64_t> pool;
  std::uint64_t* a = pool.allocate(1u);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);
  // The free list hands the same slot straight back.
  std::uint64_t* b = pool.allocate(2u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(*b, 2u);
  pool.release(b);
}

TEST(Pool, RunsDestructorsOnRelease) {
  struct Tracked {
    int* live;
    explicit Tracked(int* l) : live(l) { ++*live; }
    ~Tracked() { --*live; }
  };
  int live = 0;
  Pool<Tracked> pool;
  Tracked* a = pool.allocate(&live);
  Tracked* b = pool.allocate(&live);
  EXPECT_EQ(live, 2);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(live, 0);
}

TEST(Pool, ThreadSafeVariantSurvivesConcurrentChurn) {
  // The sharded-engine pattern: allocation on one thread, release on
  // another, many times over. The pool must neither lose slots nor
  // corrupt payloads.
  Pool<std::uint64_t, true> pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(t) << 32) | static_cast<std::uint32_t>(i);
        std::uint64_t* slot = pool.allocate(tag);
        ASSERT_EQ(*slot, tag);  // no other thread may scribble here
        pool.release(slot);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace mb::support
