#include "support/check.h"

#include <gtest/gtest.h>

namespace mb::support {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(check(true, "here", "fine"));
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    check(false, "MyModule::fn", "bad argument");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "MyModule::fn: bad argument");
  }
}

TEST(Check, FailAlwaysThrows) {
  EXPECT_THROW(fail("x", "y"), Error);
}

TEST(Check, ErrorIsARuntimeError) {
  try {
    fail("a", "b");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "a: b");
    return;
  }
  FAIL() << "Error should derive from std::runtime_error";
}

}  // namespace
}  // namespace mb::support
