// Executor::run_pinned: every task on its own thread, all concurrent —
// the property the sharded DES engine's window barriers depend on.
// (Executor::run is covered by tests/core/campaign_test.cpp.)
#include "support/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "support/check.h"

namespace mb::support {
namespace {

TEST(ExecutorPinned, RunsEveryIndexExactlyOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(4);
  executor.run_pinned(4, [&hits](std::size_t i) { ++hits[i]; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(executor.tasks_run(), 4u);
}

TEST(ExecutorPinned, AllTasksRunConcurrently) {
  // Each task waits for every other task to arrive before returning.
  // Under any scheme where one thread runs two tasks sequentially, this
  // rendezvous never completes — so mere completion proves that all
  // tasks were live at the same time (the barrier-safety contract).
  constexpr std::size_t kTasks = 4;
  Executor executor(kTasks);
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t arrived = 0;
  executor.run_pinned(kTasks, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == kTasks; });
  });
  EXPECT_EQ(arrived, kTasks);
}

TEST(ExecutorPinned, TasksGetDistinctThreads) {
  constexpr std::size_t kTasks = 3;
  Executor executor(kTasks);
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t arrived = 0;
  std::set<std::thread::id> thread_ids;
  executor.run_pinned(kTasks, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    thread_ids.insert(std::this_thread::get_id());
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == kTasks; });
  });
  EXPECT_EQ(thread_ids.size(), kTasks);
}

TEST(ExecutorPinned, PropagatesTaskException) {
  Executor executor(2);
  EXPECT_THROW(executor.run_pinned(2,
                                   [](std::size_t i) {
                                     if (i == 1) throw Error("task failed");
                                   }),
               Error);
}

TEST(ExecutorPinned, RejectsMoreTasksThanJobs) {
  Executor executor(2);
  EXPECT_THROW(executor.run_pinned(3, [](std::size_t) {}), Error);
}

TEST(ExecutorPinned, ZeroTasksIsANoOp) {
  Executor executor(2);
  executor.run_pinned(0, [](std::size_t) { FAIL() << "must not be called"; });
  EXPECT_EQ(executor.tasks_run(), 0u);
}

}  // namespace
}  // namespace mb::support
