#include "support/hash.h"

#include <gtest/gtest.h>

namespace mb::support {
namespace {

TEST(Fnv1a64, MatchesPublishedVectors) {
  // Standard FNV-1a 64-bit test vectors — any change here means cache
  // digests change and every persisted cache entry silently invalidates.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hasher, StrIsLengthPrefixed) {
  const auto h1 = Hasher().str("ab").str("c").digest();
  const auto h2 = Hasher().str("a").str("bc").digest();
  const auto h3 = Hasher().str("abc").digest();
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h2, h3);
}

TEST(Hasher, FeedOrderMatters) {
  EXPECT_NE(Hasher().u64(1).u64(2).digest(), Hasher().u64(2).u64(1).digest());
}

TEST(Hasher, F64UsesBitPattern) {
  EXPECT_EQ(Hasher().f64(1.5).digest(), Hasher().f64(1.5).digest());
  EXPECT_NE(Hasher().f64(1.5).digest(), Hasher().f64(-1.5).digest());
  // Documented quirk: +0.0 and -0.0 have different bit patterns.
  EXPECT_NE(Hasher().f64(0.0).digest(), Hasher().f64(-0.0).digest());
}

TEST(Hasher, EmptyStrStillMixesLength) {
  EXPECT_NE(Hasher().str("").digest(), Hasher().digest());
}

TEST(Hex64, ZeroPadsTo16Digits) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xffULL), "00000000000000ff");
  EXPECT_EQ(hex64(0xcbf29ce484222325ULL), "cbf29ce484222325");
}

TEST(DeriveSeed, DeterministicAndSensitiveToBothInputs) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

}  // namespace
}  // namespace mb::support
