#include "support/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/check.h"

namespace mb::support {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape("unroll=4 bits=128"), "unroll=4 bits=128");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumber, IntegersHaveNoDecimalNoise) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
}

TEST(JsonNumber, RoundTripsDoubles) {
  for (double v : {3.14159265358979, 1.0 / 3.0, 1e-20, 6.02214076e23,
                   0.1 + 0.2}) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w(/*pretty=*/false);
  w.begin_object();
  w.field("name", "bench");
  w.field("n", std::uint64_t{3});
  w.field("ok", true);
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"bench\",\"n\":3,\"ok\":true,"
                     "\"none\":null}");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w(/*pretty=*/false);
  w.begin_object();
  w.key("samples").begin_array();
  w.value(1.5).value(2.5);
  w.end_array();
  w.key("meta").begin_object();
  w.field("depth", 2);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"samples\":[1.5,2.5],\"meta\":{\"depth\":2}}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w(/*pretty=*/false);
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(JsonWriter, PrettyOutputParses) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("xs").as_array().size(), 3u);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), Error);  // value where a key belongs
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), Error);  // key inside an array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), Error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), Error);  // unclosed container
  }
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3").as_number(), -2500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json("\"a\\n\\\"b\\\\c\\u0041\"").as_string(),
            "a\n\"b\\cA");
}

TEST(JsonParse, NestedDocument) {
  const JsonValue doc = parse_json(
      R"({"schema": "x", "list": [1, {"k": [true, null]}], "n": 2})");
  EXPECT_EQ(doc.at("schema").as_string(), "x");
  const auto& list = doc.at("list").as_array();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list[0].as_number(), 1.0);
  EXPECT_EQ(list[1].at("k").as_array().size(), 2u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), Error);
}

TEST(JsonParse, PreservesMemberOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("tru"), Error);
  EXPECT_THROW(parse_json("1 2"), Error);  // trailing content
  EXPECT_THROW(parse_json("--1"), Error);
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "membench/snowball/unroll=4 \"quoted\"");
  w.key("samples").begin_array();
  const std::vector<double> samples{0.1234567890123, 4.2e-9, 1e15};
  for (double s : samples) w.value(s);
  w.end_array();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("name").as_string(),
            "membench/snowball/unroll=4 \"quoted\"");
  const auto& xs = doc.at("samples").as_array();
  ASSERT_EQ(xs.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_EQ(xs[i].as_number(), samples[i]);
}

}  // namespace
}  // namespace mb::support
