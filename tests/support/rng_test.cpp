#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/check.h"

namespace mb::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformRangeHitsBothEndpoints) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000 && !(saw_lo && saw_hi); ++i) {
    const auto v = rng.uniform_u64(0, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRangeSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformRangePreconditions) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_u64(6, 5), Error);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(29);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(31);
  Rng child = parent.split();
  // A crude correlation check: matching draws should be rare.
  int equal_top_bits = 0;
  for (int i = 0; i < 1000; ++i)
    if ((parent() >> 56) == (child() >> 56)) ++equal_top_bits;
  EXPECT_LT(equal_top_bits, 30);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  std::vector<std::size_t> identity(100);
  for (std::size_t i = 0; i < 100; ++i) identity[i] = i;
  EXPECT_NE(p, identity);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Splitmix, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace mb::support
