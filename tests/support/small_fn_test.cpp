// SmallFn: inline storage for small captures, heap fallback for large
// ones, correct move/destroy lifecycles either way.
#include "support/small_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace mb::support {
namespace {

TEST(SmallFn, EmptyIsFalseAndAssignedIsTrue) {
  SmallFn<48> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  SmallFn<48> null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
  fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
}

TEST(SmallFn, InvokesInlineCapture) {
  int calls = 0;
  int* p = &calls;
  SmallFn<48> fn = [p] { ++*p; };
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFn, LargeCaptureFallsBackToHeapAndStillWorks) {
  std::array<double, 32> big{};  // 256 bytes: far past any inline cap
  big[31] = 42.0;
  double out = 0.0;
  double* out_p = &out;
  SmallFn<48> fn = [big, out_p] { *out_p = big[31]; };
  fn();
  EXPECT_EQ(out, 42.0);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int calls = 0;
  int* p = &calls;
  SmallFn<48> a = [p] { ++*p; };
  SmallFn<48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  SmallFn<48> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFn, MoveOnlyCaptureIsSupported) {
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  int* seen_p = &seen;
  SmallFn<48> fn = [owned = std::move(owned), seen_p] { *seen_p = *owned; };
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(SmallFn, DestroysCaptureExactlyOnce) {
  struct Counter {
    int* live;
    explicit Counter(int* l) : live(l) { ++*live; }
    Counter(Counter&& o) noexcept : live(o.live) { ++*live; }
    Counter(const Counter& o) : live(o.live) { ++*live; }
    ~Counter() { --*live; }
    void operator()() const {}
  };
  int live = 0;
  {
    SmallFn<48> fn = Counter(&live);
    EXPECT_GT(live, 0);
    SmallFn<48> moved = std::move(fn);
    moved();
  }
  EXPECT_EQ(live, 0);

  // Heap-fallback lifecycle: the padded callable exceeds the inline cap.
  struct BigCounter : Counter {
    unsigned char pad[128] = {};
    using Counter::Counter;
  };
  {
    SmallFn<48> fn = BigCounter(&live);
    EXPECT_GT(live, 0);
    SmallFn<48> moved = std::move(fn);
    moved();
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace mb::support
