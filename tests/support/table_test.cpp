#include "support/table.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::support {
namespace {

TEST(Table, RendersHeaderAndRowsAligned) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Table, OverlongRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), Error);
}

TEST(FmtFixed, Rounds) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.5, 0), "2");  // banker's-free: printf rounding
}

TEST(FmtEng, PrecisionAdaptsToMagnitude) {
  EXPECT_EQ(fmt_eng(12345.6), "12345.6");
  EXPECT_EQ(fmt_eng(3.14159), "3.14");
  EXPECT_EQ(fmt_eng(0.012345), "0.0123");
}

TEST(FmtGroup, InsertsThousandsSeparators) {
  EXPECT_EQ(fmt_group(0), "0");
  EXPECT_EQ(fmt_group(999), "999");
  EXPECT_EQ(fmt_group(1000), "1,000");
  EXPECT_EQ(fmt_group(1234567), "1,234,567");
  EXPECT_EQ(fmt_group(4521733), "4,521,733");
}


TEST(TableCsv, PlainCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableCsv, EscapesCommasAndQuotes) {
  Table t({"name", "value"});
  t.add_row({"x,y", "he said \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,value\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableCsv, PaddedShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace mb::support
