#include "trace/gantt.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mb::trace {
namespace {

Record rec(std::uint32_t rank, double t0, double t1, EventKind kind,
           std::string label = {}) {
  Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  return r;
}

TEST(Gantt, RendersOneRowPerRank) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  t.add(rec(1, 0, 1, EventKind::kCompute));
  const std::string g = render_gantt(t, GanttOptions{});
  EXPECT_NE(g.find(" 0 |"), std::string::npos);
  EXPECT_NE(g.find(" 1 |"), std::string::npos);
  EXPECT_EQ(g.find(" 2 |"), std::string::npos);
}

TEST(Gantt, ComputeFillsTheRow) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.width = 20;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find("####################"), std::string::npos);
}

TEST(Gantt, DelayedCollectiveGetsCapitalA) {
  Trace t;
  // Nine fast collectives and one 10x outlier.
  for (int i = 0; i < 9; ++i)
    t.add(rec(0, i, i + 0.1, EventKind::kCollective, "a2a"));
  t.add(rec(0, 9, 10.5, EventKind::kCollective, "a2a"));
  GanttOptions opt;
  opt.width = 40;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find('A'), std::string::npos);
  EXPECT_NE(g.find('a'), std::string::npos);
}

TEST(Gantt, WindowClipsEvents) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  t.add(rec(0, 5, 6, EventKind::kSend));
  GanttOptions opt;
  opt.width = 10;
  opt.t1 = 2.0;  // the send is outside the window
  const std::string g = render_gantt(t, opt);
  // Skip the legend line; the rows must contain compute but no send.
  const std::string rows = g.substr(g.find('\n') + 1);
  EXPECT_EQ(rows.find('s'), std::string::npos);
  EXPECT_NE(rows.find('#'), std::string::npos);
}

TEST(Gantt, MaxRanksCut) {
  Trace t;
  for (std::uint32_t r = 0; r < 20; ++r)
    t.add(rec(r, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.max_ranks = 4;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find("(+16 more ranks)"), std::string::npos);
}

TEST(Gantt, EmptyTraceHandled) {
  Trace t;
  EXPECT_EQ(render_gantt(t, GanttOptions{}), "(empty trace)\n");
}

TEST(Gantt, TooNarrowRejected) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.width = 4;
  EXPECT_THROW(render_gantt(t, opt), support::Error);
}

}  // namespace
}  // namespace mb::trace
