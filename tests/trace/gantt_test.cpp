#include "trace/gantt.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"

namespace mb::trace {
namespace {

Record rec(std::uint32_t rank, double t0, double t1, EventKind kind,
           std::string label = {}) {
  Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  return r;
}

TEST(Gantt, RendersOneRowPerRank) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  t.add(rec(1, 0, 1, EventKind::kCompute));
  const std::string g = render_gantt(t, GanttOptions{});
  EXPECT_NE(g.find(" 0 |"), std::string::npos);
  EXPECT_NE(g.find(" 1 |"), std::string::npos);
  EXPECT_EQ(g.find(" 2 |"), std::string::npos);
}

TEST(Gantt, ComputeFillsTheRow) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.width = 20;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find("####################"), std::string::npos);
}

TEST(Gantt, DelayedCollectiveGetsCapitalA) {
  Trace t;
  // Nine fast collectives and one 10x outlier.
  for (int i = 0; i < 9; ++i)
    t.add(rec(0, i, i + 0.1, EventKind::kCollective, "a2a"));
  t.add(rec(0, 9, 10.5, EventKind::kCollective, "a2a"));
  GanttOptions opt;
  opt.width = 40;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find('A'), std::string::npos);
  EXPECT_NE(g.find('a'), std::string::npos);
}

TEST(Gantt, WindowClipsEvents) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  t.add(rec(0, 5, 6, EventKind::kSend));
  GanttOptions opt;
  opt.width = 10;
  opt.t1 = 2.0;  // the send is outside the window
  const std::string g = render_gantt(t, opt);
  // The rank rows (lines with a '|') must show compute but not the send;
  // the clip must be announced in the footer instead of silent.
  std::istringstream lines(g);
  std::string line;
  bool saw_compute = false;
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;  // legend / footer
    EXPECT_EQ(line.find('s'), std::string::npos) << line;
    if (line.find('#') != std::string::npos) saw_compute = true;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_NE(g.find("1 events outside window"), std::string::npos);
}

TEST(Gantt, MaxRanksCut) {
  Trace t;
  for (std::uint32_t r = 0; r < 20; ++r)
    t.add(rec(r, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.max_ranks = 4;
  const std::string g = render_gantt(t, opt);
  EXPECT_NE(g.find("16 ranks not shown"), std::string::npos);
}

TEST(Gantt, NoFooterWhenNothingTruncated) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  t.add(rec(1, 0, 1, EventKind::kSend));
  const std::string g = render_gantt(t, GanttOptions{});
  EXPECT_EQ(g.find("not shown"), std::string::npos);
  EXPECT_EQ(g.find("outside window"), std::string::npos);
}

TEST(Gantt, EmptyTraceHandled) {
  Trace t;
  EXPECT_EQ(render_gantt(t, GanttOptions{}), "(empty trace)\n");
}

TEST(Gantt, TooNarrowRejected) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute));
  GanttOptions opt;
  opt.width = 4;
  EXPECT_THROW(render_gantt(t, opt), support::Error);
}

}  // namespace
}  // namespace mb::trace
