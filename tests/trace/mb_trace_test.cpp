#include "trace/mb_trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"

namespace mb::trace {
namespace {

Trace sample_trace() {
  Trace t;
  Record r;
  r.rank = 0;
  r.t0 = 0.1;
  r.t1 = 0.30000000000000004;  // survives only a bit-exact format
  r.kind = EventKind::kCompute;
  r.label = "convolution";
  t.add(r);
  r.rank = 2;
  r.t0 = 0.3;
  r.t1 = 0.5;
  r.kind = EventKind::kCollective;
  r.label = "alltoallv";
  r.bytes = 1 << 20;
  t.add(r);
  return t;
}

TEST(MbTrace, RoundTripIsBitExact) {
  Trace t = sample_trace();
  MbTraceMeta meta;
  meta.tool_version = "1.0.0";
  meta.seed = 42;
  meta.total_ranks = 4;
  meta.sampled_ranks = {0, 2};
  meta.dropped = 7;

  std::ostringstream os(std::ios::binary);
  write_mb_trace(os, t, meta);
  std::istringstream is(os.str(), std::ios::binary);
  const MbTraceFile file = read_mb_trace(is);

  EXPECT_EQ(file.meta.tool_version, "1.0.0");
  EXPECT_EQ(file.meta.seed, 42u);
  EXPECT_EQ(file.meta.total_ranks, 4u);
  EXPECT_EQ(file.meta.sampled_ranks, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(file.meta.dropped, 7u);

  ASSERT_EQ(file.trace.size(), 2u);
  const Record& a = file.trace.records()[0];
  EXPECT_EQ(a.rank, 0u);
  EXPECT_EQ(a.t0, 0.1);  // exact: raw IEEE-754 bits, no text rounding
  EXPECT_EQ(a.t1, 0.30000000000000004);
  EXPECT_EQ(a.label, "convolution");
  const Record& b = file.trace.records()[1];
  EXPECT_EQ(b.kind, EventKind::kCollective);
  EXPECT_EQ(b.bytes, static_cast<std::uint64_t>(1 << 20));

  // Provenance flows from the header into the in-memory trace.
  ASSERT_TRUE(file.trace.has_provenance());
  EXPECT_EQ(file.trace.tool_version(), "1.0.0");
  EXPECT_EQ(file.trace.seed(), 42u);
}

TEST(MbTrace, WriteIsDeterministic) {
  Trace t = sample_trace();
  MbTraceMeta meta;
  meta.tool_version = "1.0.0";
  meta.total_ranks = 4;
  std::ostringstream a(std::ios::binary);
  std::ostringstream b(std::ios::binary);
  write_mb_trace(a, t, meta);
  write_mb_trace(b, t, meta);
  EXPECT_EQ(a.str(), b.str());
}

TEST(MbTrace, IsMbTraceSniffsAndRestoresStream) {
  Trace t = sample_trace();
  MbTraceMeta meta;
  meta.total_ranks = 4;
  std::ostringstream os(std::ios::binary);
  write_mb_trace(os, t, meta);

  std::istringstream binary(os.str(), std::ios::binary);
  EXPECT_TRUE(is_mb_trace(binary));
  // The sniff must not consume the header: a full read still works.
  EXPECT_EQ(read_mb_trace(binary).trace.size(), 2u);

  std::istringstream text("0:compute:x:0:1:0\n");
  EXPECT_FALSE(is_mb_trace(text));
  std::string line;
  std::getline(text, line);
  EXPECT_EQ(line, "0:compute:x:0:1:0");  // stream position restored

  std::istringstream tiny("MB");
  EXPECT_FALSE(is_mb_trace(tiny));
}

TEST(MbTrace, RejectsCorruptInput) {
  Trace t = sample_trace();
  MbTraceMeta meta;
  meta.total_ranks = 4;
  std::ostringstream os(std::ios::binary);
  write_mb_trace(os, t, meta);
  const std::string good = os.str();

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(read_mb_trace(is), support::Error);
  }
  {  // unsupported version
    std::string bad = good;
    bad[4] = static_cast<char>(0x7F);
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(read_mb_trace(is), support::Error);
  }
  {  // truncated mid-record
    std::istringstream is(good.substr(0, good.size() - 5),
                          std::ios::binary);
    EXPECT_THROW(read_mb_trace(is), support::Error);
  }
  {  // empty
    std::istringstream is(std::string{}, std::ios::binary);
    EXPECT_THROW(read_mb_trace(is), support::Error);
  }
}

}  // namespace
}  // namespace mb::trace
