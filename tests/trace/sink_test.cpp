#include "trace/sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "support/check.h"
#include "trace/mb_trace.h"

namespace mb::trace {
namespace {

Record rec(std::uint32_t rank, double t0, double t1, EventKind kind,
           std::string label, std::uint64_t bytes = 0) {
  Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  r.bytes = bytes;
  return r;
}

TEST(EventKindMask, ParsesNamesAndAll) {
  EXPECT_EQ(parse_event_kind_mask("all"), kAllEventKinds);
  const std::uint32_t mask = parse_event_kind_mask("compute,collective");
  EXPECT_TRUE(mask & event_kind_bit(EventKind::kCompute));
  EXPECT_TRUE(mask & event_kind_bit(EventKind::kCollective));
  EXPECT_FALSE(mask & event_kind_bit(EventKind::kSend));
  EXPECT_THROW(parse_event_kind_mask("warp"), support::Error);
  EXPECT_THROW(parse_event_kind_mask(""), support::Error);
}

TEST(SampleRanks, DeterministicAndDistinct) {
  const auto a = sample_ranks(1000, 16, 42);
  const auto b = sample_ranks(1000, 16, 42);
  EXPECT_EQ(a, b);  // same seed, same set — on every platform
  ASSERT_EQ(a.size(), 16u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
  for (const std::uint32_t r : a) EXPECT_LT(r, 1000u);

  const auto c = sample_ranks(1000, 16, 43);
  EXPECT_NE(a, c);  // a different seed picks a different set
  // Count >= total degenerates to "all".
  EXPECT_EQ(sample_ranks(4, 10, 1).size(), 4u);
}

TEST(CollectorSink, SerialAppendsInArrivalOrder) {
  Trace out;
  CollectorSink sink(out, 2, /*parallel=*/false);
  EXPECT_TRUE(sink.wants(1, EventKind::kWait));
  sink.emit(rec(1, 0, 1, EventKind::kCompute, "b"));
  sink.emit(rec(0, 1, 2, EventKind::kCompute, "a"));
  sink.flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].rank, 1u);  // arrival order, not rank-major
}

TEST(CollectorSink, ParallelFlushesRankMajor) {
  Trace out;
  CollectorSink sink(out, 2, /*parallel=*/true);
  sink.emit(rec(1, 0, 1, EventKind::kCompute, "b"));
  sink.emit(rec(0, 1, 2, EventKind::kCompute, "a"));
  EXPECT_EQ(out.size(), 0u);  // buffered until flush
  sink.flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].rank, 0u);
  EXPECT_EQ(out.records()[1].rank, 1u);
}

TEST(StreamingSink, FiltersByRankAndKind) {
  SinkConfig config;
  config.rank_list = {1, 3};
  config.kind_mask = event_kind_bit(EventKind::kCollective);
  StreamingSink sink(4, config);
  EXPECT_TRUE(sink.wants(1, EventKind::kCollective));
  EXPECT_FALSE(sink.wants(1, EventKind::kCompute));  // kind filtered
  EXPECT_FALSE(sink.wants(0, EventKind::kCollective));  // rank filtered
  sink.emit(rec(3, 0, 1, EventKind::kCollective, "alltoallv"));
  sink.close();
  Trace out;
  sink.drain(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.records()[0].rank, 3u);
}

TEST(StreamingSink, RingOverflowDropsOldestAndCounts) {
  SinkConfig config;
  config.ring_capacity = 3;
  StreamingSink sink(1, config);
  for (int i = 0; i < 8; ++i)
    sink.emit(rec(0, i, i + 1, EventKind::kCompute, "c" + std::to_string(i)));
  sink.close();
  EXPECT_EQ(sink.total_emitted(), 8u);
  EXPECT_EQ(sink.total_dropped(), 5u);
  EXPECT_EQ(sink.dropped(0), 5u);
  Trace out;
  sink.drain(out);
  // The *newest* capacity records survive, oldest-first: the tail of a
  // run (where stragglers and faults live) is what the ring keeps.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.records()[0].label, "c5");
  EXPECT_EQ(out.records()[2].label, "c7");
}

TEST(StreamingSink, DrainIsRankMajorAndStampsProvenance) {
  SinkConfig config;
  config.tool_version = "9.9.9";
  config.seed = 77;
  StreamingSink sink(3, config);
  sink.emit(rec(2, 0, 1, EventKind::kCompute, "z"));
  sink.emit(rec(0, 1, 2, EventKind::kCompute, "a"));
  sink.emit(rec(2, 3, 4, EventKind::kCompute, "z2"));
  sink.close();
  Trace out;
  sink.drain(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.records()[0].rank, 0u);
  EXPECT_EQ(out.records()[1].label, "z");  // oldest-first within rank 2
  EXPECT_EQ(out.records()[2].label, "z2");
  ASSERT_TRUE(out.has_provenance());
  EXPECT_EQ(out.tool_version(), "9.9.9");
  EXPECT_EQ(out.seed(), 77u);
}

TEST(StreamingSink, RejectsOutOfRangeRankList) {
  SinkConfig config;
  config.rank_list = {0, 9};
  EXPECT_THROW(StreamingSink(4, config), support::Error);
}

TEST(StreamingSink, SpillWritesCanonicalMbTrace) {
  const std::string path = ::testing::TempDir() + "sink_spill.mbt";
  SinkConfig config;
  config.ring_capacity = 2;  // force mid-run chunk flushes
  config.spill_path = path;
  config.tool_version = "1.2.3";
  config.seed = 5;
  {
    StreamingSink sink(2, config);
    for (int i = 0; i < 5; ++i) {
      sink.emit(rec(1, i, i + 1, EventKind::kCompute, "r1-" + std::to_string(i)));
      sink.emit(rec(0, i, i + 1, EventKind::kSend, "r0-" + std::to_string(i), 64));
    }
    sink.close();
    EXPECT_EQ(sink.total_dropped(), 0u);  // spilling never loses records
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  ASSERT_TRUE(is_mb_trace(in));
  const MbTraceFile file = read_mb_trace(in);
  EXPECT_EQ(file.meta.tool_version, "1.2.3");
  EXPECT_EQ(file.meta.seed, 5u);
  EXPECT_EQ(file.meta.total_ranks, 2u);
  ASSERT_EQ(file.trace.size(), 10u);
  // Canonical order: rank-major, emission order within each rank —
  // independent of how emits interleaved across ranks.
  EXPECT_EQ(file.trace.records()[0].rank, 0u);
  EXPECT_EQ(file.trace.records()[0].label, "r0-0");
  EXPECT_EQ(file.trace.records()[5].rank, 1u);
  EXPECT_EQ(file.trace.records()[5].label, "r1-0");
  EXPECT_EQ(file.trace.records()[9].label, "r1-4");
  EXPECT_EQ(file.trace.records()[0].bytes, 64u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mb::trace
