#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"

namespace mb::trace {
namespace {

Record rec(std::uint32_t rank, double t0, double t1, EventKind kind,
           std::string label) {
  Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = std::move(label);
  return r;
}

TEST(Trace, FilterByKindAndLabel) {
  Trace t;
  t.add(rec(0, 0, 1, EventKind::kCompute, "a"));
  t.add(rec(0, 1, 2, EventKind::kCollective, "alltoallv"));
  t.add(rec(1, 1, 3, EventKind::kCollective, "bcast"));
  EXPECT_EQ(t.filter(EventKind::kCollective).size(), 2u);
  EXPECT_EQ(t.filter(EventKind::kCollective, "bcast").size(), 1u);
  EXPECT_EQ(t.filter(EventKind::kSend).size(), 0u);
}

TEST(Trace, RanksAndEndTime) {
  Trace t;
  t.add(rec(3, 0, 5, EventKind::kCompute, "x"));
  t.add(rec(1, 2, 7, EventKind::kCompute, "x"));
  EXPECT_EQ(t.ranks(), 4u);
  EXPECT_DOUBLE_EQ(t.end_time(), 7.0);
}

TEST(Trace, RejectsNegativeDuration) {
  Trace t;
  EXPECT_THROW(t.add(rec(0, 2, 1, EventKind::kCompute, "x")),
               support::Error);
}

TEST(Trace, ParaverExportFormat) {
  Trace t;
  t.add(rec(2, 0.5e-6, 1.5e-6, EventKind::kCollective, "alltoallv"));
  std::ostringstream os;
  t.write_paraver(os);
  // Microsecond timestamps are rounded, not truncated: 0.5 us -> 1 us,
  // 1.5 us -> 2 us (so a parsed dump re-exports byte-identically).
  EXPECT_NE(os.str().find("2:collective:alltoallv:1:2:0"),
            std::string::npos);
}

TEST(Trace, ParaverRoundTripIsFixpoint) {
  Trace t;
  t.add(rec(0, 0.0, 1.25e-3, EventKind::kCompute, "compute"));
  t.add(rec(1, 0.4999e-6, 2.5001e-6, EventKind::kCollective, "alltoallv"));
  t.add(rec(2, 3.0, 4.0, EventKind::kSend, "halo"));
  std::ostringstream first;
  t.write_paraver(first);

  const Trace parsed = parse_paraver(first.str());
  ASSERT_EQ(parsed.size(), t.size());
  std::ostringstream second;
  parsed.write_paraver(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Trace, ParaverCarriesProvenanceAndStaysFixpoint) {
  Trace t;
  t.add(rec(0, 0.0, 1.25e-3, EventKind::kCompute, "compute"));
  t.set_provenance("1.0.0", 2013);
  std::ostringstream first;
  t.write_paraver(first);
  EXPECT_NE(first.str().find("#provenance tool_version=1.0.0 seed=2013"),
            std::string::npos);

  const Trace parsed = parse_paraver(first.str());
  ASSERT_TRUE(parsed.has_provenance());
  EXPECT_EQ(parsed.tool_version(), "1.0.0");
  EXPECT_EQ(parsed.seed(), 2013u);
  std::ostringstream second;
  parsed.write_paraver(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Trace, ParaverWithoutProvenanceStaysFixpoint) {
  // Dumps from before provenance stamping parse (the line is absent, not
  // defaulted) and re-export byte-identically.
  const std::string dump =
      "#Paraver-like state records (rank:kind:label:t0_us:t1_us:bytes)\n"
      "0:compute:x:0:7:0\n";
  const Trace parsed = parse_paraver(dump);
  EXPECT_FALSE(parsed.has_provenance());
  std::ostringstream out;
  parsed.write_paraver(out);
  EXPECT_EQ(out.str(), dump);
}

TEST(Trace, ParseParaverReadsFieldsBack) {
  const Trace t = parse_paraver(
      "# comment line\n"
      "\n"
      "3:send:halo:10:25:4096\n");
  ASSERT_EQ(t.size(), 1u);
  const Record& r = t.records()[0];
  EXPECT_EQ(r.rank, 3u);
  EXPECT_EQ(r.kind, EventKind::kSend);
  EXPECT_EQ(r.label, "halo");
  EXPECT_DOUBLE_EQ(r.t0, 10e-6);
  EXPECT_DOUBLE_EQ(r.t1, 25e-6);
  EXPECT_EQ(r.bytes, 4096u);
}

TEST(Trace, ParseParaverAllowsColonInLabel) {
  const Trace t = parse_paraver("0:compute:phase:outer:loop:0:7:0\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.records()[0].label, "phase:outer:loop");
  EXPECT_EQ(t.records()[0].kind, EventKind::kCompute);
}

TEST(Trace, ParseParaverRejectsMalformedLines) {
  EXPECT_THROW(parse_paraver("not a record\n"), support::Error);
  EXPECT_THROW(parse_paraver("0:compute:x:1\n"), support::Error);       // too few
  EXPECT_THROW(parse_paraver("0:warp:x:0:1:0\n"), support::Error);      // bad kind
  EXPECT_THROW(parse_paraver("0:compute:x:5:1:0\n"), support::Error);   // t1 < t0
  EXPECT_THROW(parse_paraver("0:compute:x:a:1:0\n"), support::Error);   // non-digit
  EXPECT_THROW(parse_paraver("-1:compute:x:0:1:0\n"), support::Error);  // sign
}

TEST(Trace, ParseEventKindInvertsNames) {
  for (const EventKind k :
       {EventKind::kCompute, EventKind::kSend, EventKind::kRecv,
        EventKind::kCollective, EventKind::kWait})
    EXPECT_EQ(parse_event_kind(event_kind_name(k)), k);
  EXPECT_THROW(parse_event_kind("warp"), support::Error);
}

TEST(AnalyzeCollectives, AllNormalWhenUniform) {
  Trace t;
  for (std::uint32_t rank = 0; rank < 4; ++rank)
    for (int i = 0; i < 10; ++i)
      t.add(rec(rank, i, i + 0.1, EventKind::kCollective, "alltoallv"));
  const auto report = analyze_collectives(t, "alltoallv");
  EXPECT_EQ(report.instances.size(), 10u);
  EXPECT_EQ(report.delayed_count, 0u);
  EXPECT_NEAR(report.median_duration, 0.1, 1e-12);
}

TEST(AnalyzeCollectives, DetectsDelayedInstance) {
  Trace t;
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    for (int i = 0; i < 10; ++i) {
      const double dur = (i == 7) ? 1.0 : 0.1;  // instance 7 is delayed
      t.add(rec(rank, i * 2.0, i * 2.0 + dur, EventKind::kCollective,
                "alltoallv"));
    }
  }
  const auto report = analyze_collectives(t, "alltoallv");
  EXPECT_EQ(report.delayed_count, 1u);
  EXPECT_TRUE(report.instances[7].delayed);
  EXPECT_EQ(report.instances[7].slow_ranks, 4u);
  EXPECT_FALSE(report.has_partial_delays);
}

TEST(AnalyzeCollectives, DetectsPartialDelays) {
  // Only rank 2 is slow in instance 3: "in some cases all the nodes are
  // delayed while in other, only part of them" (paper Sec. IV).
  Trace t;
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    for (int i = 0; i < 8; ++i) {
      const double dur = (i == 3 && rank == 2) ? 1.0 : 0.1;
      t.add(rec(rank, i * 2.0, i * 2.0 + dur, EventKind::kCollective,
                "alltoallv"));
    }
  }
  const auto report = analyze_collectives(t, "alltoallv");
  EXPECT_EQ(report.delayed_count, 1u);
  EXPECT_EQ(report.instances[3].slow_ranks, 1u);
  EXPECT_TRUE(report.has_partial_delays);
}

TEST(AnalyzeCollectives, EmptyTraceYieldsEmptyReport) {
  Trace t;
  const auto report = analyze_collectives(t, "alltoallv");
  EXPECT_TRUE(report.instances.empty());
  EXPECT_EQ(report.delayed_count, 0u);
}

TEST(AnalyzeCollectives, RejectsBadFactor) {
  Trace t;
  EXPECT_THROW(analyze_collectives(t, "x", 0.5), support::Error);
}

TEST(EventKindNames, AllDistinct) {
  EXPECT_EQ(event_kind_name(EventKind::kCompute), "compute");
  EXPECT_EQ(event_kind_name(EventKind::kCollective), "collective");
  EXPECT_EQ(event_kind_name(EventKind::kWait), "wait");
}

}  // namespace
}  // namespace mb::trace
