#include "verify/diagnostics.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/json.h"
#include "verify/rules.h"

namespace mb::verify {
namespace {

TEST(Rules, RegistryCoversAllPublishedIds) {
  const auto& rules = all_rules();
  ASSERT_GE(rules.size(), 12u);  // the issue's floor; we ship 27
  std::set<std::string_view> ids;
  for (const RuleInfo& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_TRUE(rule.id.size() == 6u || rule.id.size() == 7u) << rule.id;
    EXPECT_TRUE(rule.pass == "mpi" || rule.pass == "lint" ||
                rule.pass == "perf")
        << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
  for (const auto id : {kRulePerfImbalance, kRulePerfIncast,
                        kRulePerfLateSender, kRulePerfCheckpointInterval,
                        kRulePerfCrossSwitchMapping,
                        kRulePerfCollectiveAlgorithm}) {
    const RuleInfo* rule = find_rule(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_EQ(rule->pass, "perf") << id;
    EXPECT_EQ(rule->severity, Severity::kWarn) << id;
  }
}

TEST(Rules, FindRule) {
  ASSERT_NE(find_rule(kRuleDeadlockCycle), nullptr);
  EXPECT_EQ(find_rule(kRuleDeadlockCycle)->severity, Severity::kError);
  ASSERT_NE(find_rule(kRuleSelfSend), nullptr);
  EXPECT_EQ(find_rule(kRuleSelfSend)->severity, Severity::kWarn);
  EXPECT_EQ(find_rule("XXX999"), nullptr);
}

TEST(Diagnostics, LocationFlavours) {
  const Location p = Location::program(3, 7);
  EXPECT_TRUE(p.in_program);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.to_string(), "rank 3 op 7");
  const Location c = Location::config("snowball.power_w");
  EXPECT_FALSE(c.in_program);
  EXPECT_EQ(c.to_string(), "snowball.power_w");
  EXPECT_TRUE(Location::none().empty());
}

TEST(Diagnostics, AddUsesRegistryDefaultSeverity) {
  Report report;
  report.add(kRuleSelfSend, Location::program(0, 0), "self send");
  report.add(kRuleDeadlockCycle, Location::program(1, 2), "cycle");
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(kRuleSelfSend));
  EXPECT_FALSE(report.has_rule(kRuleOrphanedRecv));
}

TEST(Diagnostics, ExplicitSeverityOverride) {
  Report report;
  report.add(kRuleDeadlockCycle, Severity::kNote, Location::program(2, 0),
             "participant");
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.notes(), 1u);
  EXPECT_FALSE(report.has_errors());
}

TEST(Diagnostics, UnknownRuleIdThrows) {
  Report report;
  EXPECT_THROW(report.add("NOPE42", Location::none(), "bad"),
               support::Error);
}

TEST(Diagnostics, MergeConcatenates) {
  Report a;
  a.add(kRuleCacheLinePow2, Location::config("x.line"), "bad line");
  Report b;
  b.add(kRuleSelfSend, Location::program(0, 1), "self");
  a.merge(b);
  EXPECT_EQ(a.findings().size(), 2u);
  EXPECT_EQ(a.errors(), 1u);
  EXPECT_EQ(a.warnings(), 1u);
}

TEST(Diagnostics, RenderEmptyAndNonEmpty) {
  Report report;
  EXPECT_EQ(render_diagnostics(report), "no findings\n");
  report.add(kRuleMemConfig, Location::config("p.mem"), "zero capacity",
             "set total_bytes");
  const std::string text = render_diagnostics(report);
  EXPECT_NE(text.find("PLT006"), std::string::npos);
  EXPECT_NE(text.find("p.mem"), std::string::npos);
  EXPECT_NE(text.find("[hint: set total_bytes]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST(Diagnostics, JsonDocumentRoundTrips) {
  Report report;
  report.add(kRuleOrphanedRecv, Location::program(5, 9), "stuck recv",
             "check the tag");
  report.add(kRulePowerBounds, Location::config("big.power_w"), "too hot");
  const auto doc =
      support::parse_json(diagnostics_to_json(report, "unit", 42));
  EXPECT_EQ(doc.at("schema").as_string(), "mb-diagnostics");
  EXPECT_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(doc.at("tool").as_string(), "mb_verify");
  EXPECT_FALSE(doc.at("tool_version").as_string().empty());
  EXPECT_EQ(doc.at("source").as_string(), "unit");
  EXPECT_EQ(doc.at("seed").as_number(), 42.0);
  EXPECT_EQ(doc.at("counts").at("error").as_number(), 1.0);
  EXPECT_EQ(doc.at("counts").at("warn").as_number(), 1.0);
  const auto& findings = doc.at("findings").as_array();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].at("rule").as_string(), "MPI002");
  EXPECT_EQ(findings[0].at("rank").as_number(), 5.0);
  EXPECT_EQ(findings[0].at("op_index").as_number(), 9.0);
  EXPECT_EQ(findings[0].at("hint").as_string(), "check the tag");
  EXPECT_EQ(findings[1].at("config_key").as_string(), "big.power_w");
  EXPECT_EQ(findings[1].find("rank"), nullptr);
}

TEST(Diagnostics, PublishFeedsMetricsRegistry) {
  obs::Registry& registry = obs::metrics();
  registry.reset_for_test();
  Report report;
  report.add(kRuleLinkBandwidth, Location::config("t.link"), "dead link");
  publish_diagnostics(report, "unit-test");
  EXPECT_EQ(registry.counter("verify.runs", {{"pass", "unit-test"}}).value(),
            1.0);
  EXPECT_EQ(
      registry.counter("verify.findings", {{"severity", "error"}}).value(),
      1.0);
}

}  // namespace
}  // namespace mb::verify
