// Seeded defect corpus for the fault-plan linter: one broken plan per
// FLT rule, the shipped example plans lint clean, and the rules are
// registered in the shared registry.
#include "verify/fault_lint.h"

#include <string_view>

#include <gtest/gtest.h>

#include "verify/rules.h"

namespace mb::verify {
namespace {

constexpr std::uint32_t kNodes = 8;

fault::FaultPlan clean_plan() {
  fault::FaultPlan p;
  p.crashes.push_back({2, 0.6});
  p.slowdowns.push_back({1, 0.1, 0.4, 5.0});
  p.link_downs.push_back({3, 0.3, 0.45});
  p.link_downs.push_back({3, 0.9, 1.0});
  p.losses.push_back({0, 0.01});
  p.checkpoint.enabled = true;
  p.checkpoint.interval_s = 0.25;
  return p;
}

TEST(FaultLint, CleanPlanPasses) {
  const Report report = lint_fault_plan(clean_plan(), kNodes);
  EXPECT_TRUE(report.empty()) << render_diagnostics(report);
}

TEST(FaultLint, EmptyPlanPasses) {
  EXPECT_TRUE(lint_fault_plan(fault::FaultPlan{}, kNodes).empty());
}

TEST(FaultLint, Flt001UnknownNode) {
  auto p = clean_plan();
  p.crashes.push_back({kNodes, 0.1});  // first invalid id
  const Report report = lint_fault_plan(p, kNodes);
  EXPECT_TRUE(report.has_rule(kRuleFaultUnknownNode));
  EXPECT_TRUE(report.has_errors());
  // Every section is node-checked, not just crashes.
  auto q = clean_plan();
  q.losses.push_back({99, 0.01});
  EXPECT_TRUE(lint_fault_plan(q, kNodes).has_rule(kRuleFaultUnknownNode));
}

TEST(FaultLint, Flt002OverlappingLinkWindows) {
  auto p = clean_plan();
  p.link_downs.push_back({3, 0.4, 0.6});  // starts inside [0.3, 0.45)
  const Report report = lint_fault_plan(p, kNodes);
  EXPECT_TRUE(report.has_rule(kRuleFaultOverlappingWindows));
  EXPECT_TRUE(report.has_errors());
  // Same windows on a *different* node are fine.
  auto q = clean_plan();
  q.link_downs.push_back({5, 0.4, 0.6});
  EXPECT_FALSE(
      lint_fault_plan(q, kNodes).has_rule(kRuleFaultOverlappingWindows));
}

TEST(FaultLint, Flt003BrokenCheckpointConfig) {
  auto p = clean_plan();
  p.checkpoint.interval_s = 0.0;
  EXPECT_TRUE(
      lint_fault_plan(p, kNodes).has_rule(kRuleFaultCheckpointConfig));
  auto q = clean_plan();
  q.checkpoint.write_bandwidth_bytes_per_s = -1.0;
  EXPECT_TRUE(
      lint_fault_plan(q, kNodes).has_rule(kRuleFaultCheckpointConfig));
  // A disabled checkpoint section is never inspected.
  auto r = clean_plan();
  r.checkpoint.enabled = false;
  r.checkpoint.interval_s = 0.0;
  EXPECT_FALSE(
      lint_fault_plan(r, kNodes).has_rule(kRuleFaultCheckpointConfig));
}

TEST(FaultLint, Flt004BadValues) {
  auto p = clean_plan();
  p.crashes.push_back({1, -0.5});
  EXPECT_TRUE(lint_fault_plan(p, kNodes).has_rule(kRuleFaultBadValue));
  auto q = clean_plan();
  q.link_downs.push_back({6, 0.5, 0.5});  // empty window
  EXPECT_TRUE(lint_fault_plan(q, kNodes).has_rule(kRuleFaultBadValue));
  auto r = clean_plan();
  r.slowdowns.push_back({1, 0.6, 0.8, 0.5});  // factor < 1 speeds up
  EXPECT_TRUE(lint_fault_plan(r, kNodes).has_rule(kRuleFaultBadValue));
  auto s = clean_plan();
  s.losses.push_back({1, 1.0});  // probability 1 never delivers
  EXPECT_TRUE(lint_fault_plan(s, kNodes).has_rule(kRuleFaultBadValue));
}

TEST(FaultLint, Flt005HighLossOnlyWarns) {
  auto p = clean_plan();
  p.losses.push_back({1, 0.75});
  const Report report = lint_fault_plan(p, kNodes);
  EXPECT_TRUE(report.has_rule(kRuleFaultHighLoss));
  EXPECT_FALSE(report.has_errors());  // plausibility, not structure
}

TEST(FaultLint, RulesAreRegisteredUnderTheLintPass) {
  for (const std::string_view id :
       {kRuleFaultUnknownNode, kRuleFaultOverlappingWindows,
        kRuleFaultCheckpointConfig, kRuleFaultBadValue,
        kRuleFaultHighLoss}) {
    const RuleInfo* info = find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->pass, "lint") << id;
  }
  EXPECT_EQ(find_rule(kRuleFaultHighLoss)->severity, Severity::kWarn);
  EXPECT_EQ(find_rule(kRuleFaultUnknownNode)->severity, Severity::kError);
}

}  // namespace
}  // namespace mb::verify
