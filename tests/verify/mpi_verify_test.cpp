// Seeded defect corpus for the MPI program verifier: one deliberately
// broken program per rule id asserting that exact rule fires, clean
// fixtures asserting zero findings, and a property sweep showing every
// collective lowering verifies clean at every rank count — i.e. the
// verifier trusts exactly the schedules the runtime executes.
#include "verify/mpi_verify.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "support/check.h"
#include "verify/rules.h"

namespace mb::verify {
namespace {

using mpi::Op;
using mpi::Program;

/// The single finding carrying `rule`, asserting there is exactly one
/// non-note finding in the report and it is that rule.
const Diagnostic& sole_finding(const Report& report,
                               std::string_view rule) {
  const Diagnostic* found = nullptr;
  std::size_t non_notes = 0;
  for (const Diagnostic& d : report.findings()) {
    if (d.severity == Severity::kNote) continue;
    ++non_notes;
    if (d.rule == rule) found = &d;
  }
  EXPECT_EQ(non_notes, 1u) << render_diagnostics(report);
  EXPECT_NE(found, nullptr) << render_diagnostics(report);
  return *found;
}

TEST(MpiVerify, CleanPingPongHasNoFindings) {
  Program p(2);
  p.append(0, Op::send(1, 4096, 1));
  p.append(0, Op::recv(1, 2));
  p.append(1, Op::recv(0, 1));
  p.append(1, Op::send(0, 4096, 2));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.empty()) << render_diagnostics(report);
}

TEST(MpiVerify, Mpi001UnmatchedSend) {
  Program p(2);
  p.rank(0).push_back(Op::send(1, 128, 7));
  const Report report = verify_program(p);
  const Diagnostic& d = sole_finding(report, kRuleUnmatchedSend);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.rank, 0u);
  EXPECT_EQ(d.location.op_index, 0u);
}

TEST(MpiVerify, Mpi002OrphanedRecv) {
  Program p(2);
  p.rank(0).push_back(Op::recv(1, 7));
  const Report report = verify_program(p);
  const Diagnostic& d = sole_finding(report, kRuleOrphanedRecv);
  EXPECT_EQ(d.location.rank, 0u);
  EXPECT_EQ(d.location.op_index, 0u);
  EXPECT_NE(d.message.find("finished without sending"), std::string::npos);
}

TEST(MpiVerify, Mpi003DeadlockCycleNamesTheChain) {
  // The seeded recv/send tag mismatch: both ranks post a receive whose
  // tag the peer never sends.
  Program p(2);
  p.rank(0).push_back(Op::recv(1, 2));
  p.rank(0).push_back(Op::send(1, 1024, 1));
  p.rank(1).push_back(Op::recv(0, 1));
  p.rank(1).push_back(Op::send(0, 1024, 3));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleDeadlockCycle));
  EXPECT_TRUE(report.has_errors());
  const Diagnostic& d = report.findings().front();
  EXPECT_EQ(d.rule, kRuleDeadlockCycle);
  EXPECT_EQ(d.location.rank, 0u);
  EXPECT_EQ(d.location.op_index, 0u);
  EXPECT_NE(d.message.find("rank 0 -> rank 1 -> rank 0"),
            std::string::npos)
      << d.message;
}

TEST(MpiVerify, Mpi003ThreeRankCycle) {
  Program p(3);
  p.rank(0).push_back(Op::recv(1, 1));
  p.rank(1).push_back(Op::recv(2, 1));
  p.rank(2).push_back(Op::recv(0, 1));
  const Report report = verify_program(p);
  const Diagnostic& d = report.findings().front();
  EXPECT_EQ(d.rule, kRuleDeadlockCycle);
  EXPECT_NE(d.message.find("rank 0 -> rank 1 -> rank 2 -> rank 0"),
            std::string::npos)
      << d.message;
  // The two other members are located via notes.
  EXPECT_EQ(report.notes(), 2u);
}

TEST(MpiVerify, Mpi003StuckBehindCycleIsANote) {
  Program p(3);
  p.rank(0).push_back(Op::recv(1, 1));  // cycle 0 <-> 1
  p.rank(1).push_back(Op::recv(0, 2));
  p.rank(2).push_back(Op::recv(0, 9));  // stuck behind the cycle
  const Report report = verify_program(p);
  EXPECT_EQ(report.errors(), 1u) << render_diagnostics(report);
  bool stuck_note = false;
  for (const Diagnostic& d : report.findings())
    if (d.severity == Severity::kNote && d.location.rank == 2) {
      stuck_note = true;
      EXPECT_NE(d.message.find("stuck behind"), std::string::npos);
    }
  EXPECT_TRUE(stuck_note) << render_diagnostics(report);
}

TEST(MpiVerify, Mpi004CollectiveSequenceMismatch) {
  Program p(2);
  p.rank(0).push_back(Op::bcast(0, 1024));
  p.rank(1).push_back(Op::bcast(1, 1024));  // different root
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleCollectiveMismatch));
  EXPECT_TRUE(report.has_errors());
}

TEST(MpiVerify, Mpi004CollectiveCountMismatch) {
  Program p(2);
  p.append_all(Op::barrier());
  p.rank(0).push_back(Op::barrier());  // rank 0 runs one extra barrier
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleCollectiveMismatch));
}

TEST(MpiVerify, Mpi005SelfSendWarns) {
  Program p(2);
  p.append_all(Op::barrier());  // keep the program otherwise interesting
  p.rank(0).push_back(Op::send(0, 64, 3));
  p.rank(0).push_back(Op::recv(0, 3));
  const Report report = verify_program(p);
  EXPECT_FALSE(report.has_errors()) << render_diagnostics(report);
  EXPECT_TRUE(report.has_rule(kRuleSelfSend));
  EXPECT_EQ(report.warnings(), 1u);
}

TEST(MpiVerify, Mpi006PeerOutOfRange) {
  Program p(2);
  p.rank(0).push_back(Op::send(5, 64, 1));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRulePeerOutOfRange));
  EXPECT_TRUE(report.has_errors());
}

// MPI006 must not hide unrelated findings: matching still runs with the
// broken op dropped, so the deadlock between ranks 1 and 2 is reported
// alongside the out-of-range peer (the old first-error short-circuit
// suppressed it).
TEST(MpiVerify, Mpi006DoesNotHideAnIndependentDeadlock) {
  Program p(3);
  p.rank(0).push_back(Op::send(7, 64, 1));  // MPI006: peer 7 of 3
  p.rank(1).push_back(Op::recv(2, 5));      // tag mismatch cycle
  p.rank(1).push_back(Op::send(2, 64, 4));
  p.rank(2).push_back(Op::recv(1, 6));
  p.rank(2).push_back(Op::send(1, 64, 3));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRulePeerOutOfRange))
      << render_diagnostics(report);
  EXPECT_TRUE(report.has_rule(kRuleDeadlockCycle))
      << render_diagnostics(report);
}

// Same for MPI010 (reserved-space tag): the warning fires and matching
// proceeds literally, so a clean schedule stays otherwise clean.
TEST(MpiVerify, Mpi010DoesNotSuppressMatching) {
  Program p(2);
  p.rank(0).push_back(Op::send(1, 64, 1 << 16));
  p.rank(1).push_back(Op::recv(0, 1 << 16));
  p.rank(0).push_back(Op::recv(1, 9));  // unmatched: MPI002
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleTagOutOfRange))
      << render_diagnostics(report);
  EXPECT_TRUE(report.has_rule(kRuleOrphanedRecv))
      << render_diagnostics(report);
}

TEST(MpiVerify, Mpi007RootOutOfRange) {
  Program p(2);
  p.rank(0).push_back(Op::bcast(9, 1024));
  p.rank(1).push_back(Op::bcast(9, 1024));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleRootOutOfRange));
}

TEST(MpiVerify, Mpi008AlltoallvCountsLength) {
  Program p(4);
  // Bypass the checked append to seed the defect the verifier must catch.
  for (std::uint32_t r = 0; r < 4; ++r)
    p.rank(r).push_back(Op::alltoallv({1, 2, 3}));  // 3 counts, 4 ranks
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleAlltoallvCounts));
  EXPECT_TRUE(report.has_errors());
}

TEST(MpiVerify, Mpi008CheckedAppendCatchesItAtConstruction) {
  Program p(4);
  EXPECT_THROW(p.append_all(Op::alltoallv({1, 2, 3})), support::Error);
  EXPECT_THROW(p.append(0, Op::alltoallv({1, 2, 3})), support::Error);
  EXPECT_NO_THROW(p.append_all(Op::alltoallv({1, 2, 3, 4})));
}

TEST(MpiVerify, Mpi009BadComputeSeconds) {
  Program p(1);
  p.rank(0).push_back(Op::compute(-0.5));
  const Report report = verify_program(p);
  sole_finding(report, kRuleBadComputeSeconds);
  Program q(1);
  q.rank(0).push_back(Op::compute(std::nan("")));
  EXPECT_TRUE(verify_program(q).has_rule(kRuleBadComputeSeconds));
}

TEST(MpiVerify, Mpi010TagInReservedCollectiveSpace) {
  Program p(2);
  p.rank(0).push_back(Op::send(1, 64, 1 << 16));
  p.rank(1).push_back(Op::recv(0, 1 << 16));
  const Report report = verify_program(p);
  EXPECT_TRUE(report.has_rule(kRuleTagOutOfRange));
  EXPECT_TRUE(report.has_errors());
}

TEST(MpiVerify, Mpi010NegativeTagOnlyWarns) {
  Program p(2);
  p.append(0, Op::send(1, 64, -3));
  p.append(1, Op::recv(0, -3));
  const Report report = verify_program(p);
  EXPECT_FALSE(report.has_errors()) << render_diagnostics(report);
  EXPECT_TRUE(report.has_rule(kRuleTagOutOfRange));
  EXPECT_EQ(report.warnings(), 2u);
}

TEST(MpiVerify, LocationsNameUserOpIndexNotLoweredIndex) {
  // Rank 1's broken receive sits after a barrier whose lowering expands
  // to many ops; the diagnostic must still point at user op index 1.
  Program p(2);
  p.append_all(Op::barrier());
  p.append(0, Op::send(1, 64, 1));
  p.rank(1).push_back(Op::recv(0, 2));  // wrong tag
  const Report report = verify_program(p);
  ASSERT_TRUE(report.has_errors()) << render_diagnostics(report);
  bool located = false;
  for (const Diagnostic& d : report.findings())
    if (d.location.rank == 1 && d.severity == Severity::kError) {
      EXPECT_EQ(d.location.op_index, 1u) << d.message;
      located = true;
    }
  EXPECT_TRUE(located) << render_diagnostics(report);
}

// Property: every collective lowering the runtime can produce verifies
// clean at every rank count — for all kinds and ranks in {2..9}, plus a
// mixed sequence, so the verifier never rejects a program the runtime
// would happily execute.
TEST(MpiVerifyProperty, AllCollectiveLoweringsVerifyClean) {
  for (std::uint32_t ranks = 2; ranks <= 9; ++ranks) {
    std::vector<Op> collectives = {
        Op::barrier(),
        Op::bcast(ranks - 1, 4096),
        Op::allreduce(8192),
        Op::alltoallv(std::vector<std::uint64_t>(ranks, 1024)),
        Op::gather(0, 512),
        Op::scatter(ranks / 2, 512),
        Op::allgather(256),
        Op::reduce(1 % ranks, 2048),
    };
    for (const Op& op : collectives) {
      Program p(ranks);
      p.append_all(op);
      const Report report = verify_program(p);
      EXPECT_TRUE(report.empty())
          << "ranks=" << ranks << " op label=" << op.label << "\n"
          << render_diagnostics(report);
    }
    // All of them back to back: occurrence tag bases must not collide.
    Program mixed(ranks);
    for (const Op& op : collectives) mixed.append_all(op);
    mixed.append_all(Op::compute(0.25));
    const Report report = verify_program(mixed);
    EXPECT_TRUE(report.empty())
        << "ranks=" << ranks << "\n" << render_diagnostics(report);
  }
}

// The built-in application programs are exactly what `mbctl verify-mpi`
// analyses and what CI gates on: all must verify clean.
TEST(MpiVerify, BuiltinAppProgramsVerifyClean) {
  apps::BigDftParams bigdft;
  bigdft.ranks = 8;
  bigdft.iterations = 3;
  const Report b = verify_program(apps::bigdft_program(bigdft));
  EXPECT_TRUE(b.empty()) << render_diagnostics(b);

  apps::HplParams hpl;
  hpl.ranks = 4;
  hpl.n = 1024;
  hpl.block = 128;
  const Report h = verify_program(apps::hpl_program(hpl));
  EXPECT_TRUE(h.empty()) << render_diagnostics(h);

  apps::SpecfemParams specfem;
  specfem.ranks = 6;
  specfem.steps = 4;
  const Report s = verify_program(apps::specfem_program(specfem));
  EXPECT_TRUE(s.empty()) << render_diagnostics(s);
}

}  // namespace
}  // namespace mb::verify
