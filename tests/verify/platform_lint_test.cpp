// Seeded defect corpus for the platform/model linter: one broken platform
// or network description per rule id, clean fixtures for every built-in
// model, and the CFG001 rank-count rule that mbctl's scenario commands
// share.
#include "verify/platform_lint.h"

#include <gtest/gtest.h>

#include "arch/platforms.h"
#include "verify/rules.h"

namespace mb::verify {
namespace {

arch::Platform broken_base() {
  // Start from a known-clean machine and break one knob per test.
  return arch::snowball();
}

TEST(PlatformLint, BuiltinPlatformsLintClean) {
  for (const arch::Platform& p : arch::all_builtin_platforms()) {
    const Report report = lint_platform(p);
    EXPECT_TRUE(report.empty())
        << p.name << ":\n" << render_diagnostics(report);
  }
}

TEST(PlatformLint, Plt001CacheLineNotPowerOfTwo) {
  auto p = broken_base();
  p.caches[0].line_bytes = 48;
  const Report report = lint_platform(p);
  EXPECT_TRUE(report.has_rule(kRuleCacheLinePow2));
  EXPECT_TRUE(report.has_errors());
}

TEST(PlatformLint, Plt002CapacityInversionWarns) {
  auto p = broken_base();
  ASSERT_GE(p.caches.size(), 2u);
  p.caches[1].size_bytes = p.caches[0].size_bytes / 2;
  const Report report = lint_platform(p);
  EXPECT_TRUE(report.has_rule(kRuleCacheInversion));
  // Severity is warn (deliberate exotic hierarchies exist) unless the
  // shrunken level also breaks set geometry.
  bool inversion_is_warn = false;
  for (const auto& d : report.findings())
    if (d.rule == kRuleCacheInversion)
      inversion_is_warn = d.severity == Severity::kWarn;
  EXPECT_TRUE(inversion_is_warn);
}

TEST(PlatformLint, Plt003BadSetGeometry) {
  auto p = broken_base();
  p.caches[0].size_bytes = 3 * 10 * 1024;  // not sets*line*ways pow2
  p.caches[0].associativity = 7;
  const Report report = lint_platform(p);
  EXPECT_TRUE(report.has_rule(kRuleCacheGeometry));
  auto q = broken_base();
  q.caches[0].associativity = 0;
  EXPECT_TRUE(lint_platform(q).has_rule(kRuleCacheGeometry));
}

TEST(PlatformLint, Plt004FrequencyBounds) {
  auto p = broken_base();
  p.core.freq_hz = 1e6;  // 1 MHz: a kHz/MHz/Hz units mistake
  const Report warn_report = lint_platform(p);
  EXPECT_TRUE(warn_report.has_rule(kRuleFreqBounds));
  EXPECT_FALSE(warn_report.has_errors());  // plausibility only warns
  p.core.freq_hz = 0.0;  // structurally broken: escalated to error
  const Report err_report = lint_platform(p);
  EXPECT_TRUE(err_report.has_rule(kRuleFreqBounds));
  EXPECT_TRUE(err_report.has_errors());
}

TEST(PlatformLint, Plt005PowerBounds) {
  auto p = broken_base();
  p.power_w = 2500.0;  // mW-vs-W mistake
  const Report warn_report = lint_platform(p);
  EXPECT_TRUE(warn_report.has_rule(kRulePowerBounds));
  EXPECT_FALSE(warn_report.has_errors());
  p.power_w = 0.0;
  EXPECT_TRUE(lint_platform(p).has_errors());
}

TEST(PlatformLint, Plt006MemoryConfig) {
  auto p = broken_base();
  p.mem.bandwidth_bytes_per_s = 0.0;
  EXPECT_TRUE(lint_platform(p).has_rule(kRuleMemConfig));
  auto q = broken_base();
  q.mem.total_bytes = 0;
  EXPECT_TRUE(lint_platform(q).has_rule(kRuleMemConfig));
  auto r = broken_base();
  r.mem.page_bytes = 3000;
  EXPECT_TRUE(lint_platform(r).has_rule(kRuleMemConfig));
}

TEST(PlatformLint, ConfigKeysNameThePlatformAndKnob) {
  auto p = broken_base();
  p.caches[0].line_bytes = 48;
  const Report report = lint_platform(p);
  ASSERT_FALSE(report.empty());
  const auto& loc = report.findings().front().location;
  EXPECT_FALSE(loc.in_program);
  EXPECT_NE(loc.config_key.find(p.name), std::string::npos);
  EXPECT_NE(loc.config_key.find("caches[0].line_bytes"), std::string::npos);
}

TEST(NetLint, BuiltinTreesLintClean) {
  for (const std::uint32_t nodes : {4u, 32u, 64u}) {
    const Report tib = lint_tree(net::tibidabo_tree(nodes), "tibidabo");
    EXPECT_TRUE(tib.empty()) << render_diagnostics(tib);
    const Report upg = lint_tree(net::upgraded_tree(nodes), "upgraded");
    EXPECT_TRUE(upg.empty()) << render_diagnostics(upg);
  }
}

TEST(NetLint, Net001ZeroBandwidth) {
  auto t = net::tibidabo_tree(8);
  t.uplink.bandwidth_bytes_per_s = 0.0;
  const Report report = lint_tree(t, "t");
  EXPECT_TRUE(report.has_rule(kRuleLinkBandwidth));
  EXPECT_TRUE(report.has_errors());
}

TEST(NetLint, Net002NegativeLatency) {
  auto t = net::tibidabo_tree(8);
  t.host_link.latency_s = -1e-6;
  EXPECT_TRUE(lint_tree(t, "t").has_rule(kRuleLinkLatency));
}

TEST(NetLint, Net003NonPositiveBufferOrTimeout) {
  auto t = net::tibidabo_tree(8);
  t.uplink.buffer_bytes = 0.0;
  EXPECT_TRUE(lint_tree(t, "t").has_rule(kRuleSwitchBuffer));
  auto u = net::tibidabo_tree(8);
  u.host_link.retransmit_timeout_s = 0.0;
  EXPECT_TRUE(lint_tree(u, "t").has_rule(kRuleSwitchBuffer));
}

TEST(NetLint, Net004TreeShape) {
  net::TreeParams t = net::tibidabo_tree(8);
  t.nodes = 0;
  EXPECT_TRUE(lint_tree(t, "t").has_rule(kRuleTreeShape));
  net::TreeParams u = net::tibidabo_tree(8);
  u.switch_ports = 0;
  EXPECT_TRUE(lint_tree(u, "t").has_rule(kRuleTreeShape));
}

TEST(CfgLint, Cfg001RankCount) {
  EXPECT_TRUE(lint_rank_count(0, 2, "--ranks").has_rule(kRuleRankCount));
  const Report odd = lint_rank_count(3, 2, "--ranks");
  EXPECT_TRUE(odd.has_rule(kRuleRankCount));
  EXPECT_TRUE(odd.has_errors());
  EXPECT_EQ(odd.findings().front().location.config_key, "--ranks");
  EXPECT_TRUE(lint_rank_count(4, 2, "--ranks").empty());
  EXPECT_TRUE(lint_rank_count(36, 2, "--ranks").empty());
  // Quad-core nodes accept multiples of four only.
  EXPECT_TRUE(lint_rank_count(6, 4, "--ranks").has_rule(kRuleRankCount));
  EXPECT_TRUE(lint_rank_count(8, 4, "--ranks").empty());
}

}  // namespace
}  // namespace mb::verify
