// Property suite for the static cost interpreter: for seeded
// configurations of all three paper apps the static per-rank byte
// counts must equal what the DES-backed runtime actually moves, and the
// static makespan bounds must bracket the simulated makespan
// (lower <= DES <= upper). This is the soundness contract behind
// `mbctl analyze-static` — predictions you can trust before paying for
// a simulation.
#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "apps/bigdft.h"
#include "apps/cluster.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "obs/metrics.h"
#include "verify/mpi_verify.h"
#include "verify/static_cost.h"

namespace mb::verify {
namespace {

/// Slack for the float-summed DES counters vs the exact integer static
/// counts, and for bound comparisons at the makespan scale.
constexpr double kRelTol = 1e-9;

struct BoundCheck {
  std::string name;
  mpi::Program program;
  apps::ClusterConfig cluster;
};

/// Runs the DES and asserts the static facts bracket it.
void expect_brackets(const BoundCheck& check) {
  SCOPED_TRACE(check.name);
  const mpi::Program& program = check.program;

  // The bounds are only claimed for programs that verify clean.
  const Report verdict = verify_program(program);
  ASSERT_FALSE(verdict.has_errors()) << render_diagnostics(verdict);

  CostDescriptor d;
  d.tree = check.cluster.tree;
  d.cores_per_node = check.cluster.cores_per_node;
  d.mtu_bytes = check.cluster.mtu_bytes;
  d.mpi = check.cluster.mpi;
  const CostReport cost = analyze_cost(program, d);

  obs::Registry& registry = obs::metrics();
  registry.reset_for_test();
  const auto result = apps::run_on_cluster(check.cluster, program);
  ASSERT_TRUE(result.completed);
  const double makespan_s = result.makespan_s;

  // Exact traffic: the runtime counts payload bytes per rank.
  for (std::uint32_t r = 0; r < program.ranks(); ++r) {
    const double sent =
        registry
            .counter("mpi.bytes_sent", {{"rank", std::to_string(r)}})
            .value();
    const double received =
        registry
            .counter("mpi.bytes_received", {{"rank", std::to_string(r)}})
            .value();
    EXPECT_NEAR(sent, static_cast<double>(cost.per_rank[r].bytes_sent),
                kRelTol * std::max(1.0, sent))
        << "rank " << r;
    EXPECT_NEAR(received,
                static_cast<double>(cost.per_rank[r].bytes_received),
                kRelTol * std::max(1.0, received))
        << "rank " << r;
  }

  // Bounds bracket the DES makespan.
  EXPECT_LE(cost.makespan_lower_s, makespan_s * (1.0 + kRelTol))
      << "lower bound above the simulated makespan";
  EXPECT_GE(cost.makespan_upper_s, makespan_s * (1.0 - kRelTol))
      << "upper bound below the simulated makespan";
  EXPECT_GT(makespan_s, 0.0);
}

BoundCheck make_bigdft(std::uint32_t ranks, std::uint64_t seed) {
  apps::BigDftParams p;
  p.ranks = ranks;
  p.iterations = 2;
  p.compute_s_per_iter = 0.4;
  p.transpose_bytes = 8ull << 20;
  p.seed = seed;
  return {"bigdft-" + std::to_string(ranks) + "-s" + std::to_string(seed),
          apps::bigdft_program(p), apps::tibidabo_cluster(ranks / 2)};
}

BoundCheck make_hpl(std::uint32_t ranks) {
  apps::HplParams p;
  p.ranks = ranks;
  p.n = 2048;
  p.block = 128;
  return {"hpl-" + std::to_string(ranks), apps::hpl_program(p),
          apps::tibidabo_cluster(ranks / 2)};
}

BoundCheck make_specfem(std::uint32_t ranks, std::uint64_t seed,
                        bool upgraded = false) {
  apps::SpecfemParams p;
  p.ranks = ranks;
  p.steps = 4;
  p.compute_s_per_step = 2.0;
  p.seed = seed;
  return {"specfem-" + std::to_string(ranks) + "-s" + std::to_string(seed),
          apps::specfem_program(p),
          upgraded ? apps::upgraded_cluster(ranks / 2)
                   : apps::tibidabo_cluster(ranks / 2)};
}

TEST(StaticBoundsProperty, BigDftTibidabo64) {
  expect_brackets(make_bigdft(64, 1));
  expect_brackets(make_bigdft(64, 9));
}

TEST(StaticBoundsProperty, HplTibidabo64) { expect_brackets(make_hpl(64)); }

TEST(StaticBoundsProperty, SpecfemTibidabo256) {
  expect_brackets(make_specfem(256, 1));
  expect_brackets(make_specfem(256, 5));
}

TEST(StaticBoundsProperty, SpecfemUpgraded1024) {
  expect_brackets(make_specfem(1024, 1, /*upgraded=*/true));
}

}  // namespace
}  // namespace mb::verify
