// Unit tests for the pass-3 abstract cost interpreter plus the seeded
// PERF fixture corpus: one deliberately slow program and one clean
// program per PERF rule, asserting the rule fires exactly where the
// fixture is broken and stays quiet where it is not.
#include "verify/static_cost.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "fault/plan.h"
#include "net/topology.h"
#include "support/check.h"
#include "support/json.h"
#include "verify/mpi_verify.h"
#include "verify/perf_rules.h"
#include "verify/rules.h"

namespace mb::verify {
namespace {

using mpi::Op;
using mpi::Program;

/// Descriptor for a small Tibidabo-like cluster sized to the program
/// (2 ranks per node, ranks must be even).
CostDescriptor tibidabo_descriptor(std::uint32_t ranks) {
  CostDescriptor d;
  d.tree = net::tibidabo_tree(ranks / 2);
  return d;
}

// ---------------------------------------------------------------------------
// Exact traffic accounting.

TEST(StaticCost, CountsP2pBytesExactly) {
  Program p(4);
  p.rank(0).push_back(Op::send(2, 1000, 1));  // cross-node (nodes 0 -> 1)
  p.rank(2).push_back(Op::recv(0, 1));
  p.rank(0).push_back(Op::send(1, 500, 2));  // intra-node (both on node 0)
  p.rank(1).push_back(Op::recv(0, 2));
  const CostReport r = analyze_cost(p, tibidabo_descriptor(4));

  EXPECT_EQ(r.ranks, 4u);
  EXPECT_EQ(r.nodes, 2u);
  EXPECT_EQ(r.per_rank[0].bytes_sent, 1500u);
  EXPECT_EQ(r.per_rank[0].messages_sent, 2u);
  EXPECT_EQ(r.per_rank[1].bytes_received, 500u);
  EXPECT_EQ(r.per_rank[2].bytes_received, 1000u);
  EXPECT_EQ(r.total_bytes, 1500u);
  EXPECT_EQ(r.total_messages, 2u);
  EXPECT_EQ(r.intra_messages, 1u);
  EXPECT_EQ(r.net_messages, 1u);
  // 1000 payload bytes in 1500-byte frames: one frame.
  EXPECT_EQ(r.total_frames, 1u);
}

TEST(StaticCost, CollectiveTrafficMatchesTheLowering) {
  // Ring allreduce moves 2*(p-1) chunks of bytes/p per rank.
  const std::uint32_t ranks = 4;
  const std::uint64_t bytes = 4000;
  Program p(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r)
    p.rank(r).push_back(Op::allreduce(bytes));
  const CostReport r = analyze_cost(p, tibidabo_descriptor(ranks));

  const std::uint64_t per_rank = 2 * (ranks - 1) * (bytes / ranks);
  for (std::uint32_t i = 0; i < ranks; ++i) {
    EXPECT_EQ(r.per_rank[i].bytes_sent, per_rank) << "rank " << i;
    EXPECT_EQ(r.per_rank[i].bytes_received, per_rank) << "rank " << i;
  }
  ASSERT_EQ(r.collectives.size(), 1u);
  EXPECT_EQ(r.collectives[0].kind, Op::Kind::kAllreduce);
  EXPECT_EQ(r.collectives[0].payload_bytes, per_rank * ranks);
}

TEST(StaticCost, BoundsAreOrderedAndPositive) {
  Program p(8);
  for (std::uint32_t r = 0; r < 8; ++r) {
    p.rank(r).push_back(Op::compute(0.01));
    p.rank(r).push_back(Op::allreduce(64 << 10));
  }
  const CostReport r = analyze_cost(p, tibidabo_descriptor(8));
  EXPECT_GT(r.makespan_lower_s, 0.0);
  EXPECT_GE(r.makespan_serialized_s, r.makespan_lower_s);
  EXPECT_GE(r.makespan_upper_s, r.makespan_serialized_s);
  EXPECT_NEAR(r.makespan_upper_s,
              r.makespan_serialized_s + r.retransmit_allowance_s, 1e-9);
  // The serialized sum contains every rank's compute.
  EXPECT_GE(r.makespan_serialized_s, r.total_compute_s);
}

TEST(StaticCost, LowerBoundSeesComputeCriticalPath) {
  Program p(2);
  p.rank(0).push_back(Op::compute(2.0));
  p.rank(1).push_back(Op::compute(0.5));
  const CostReport r = analyze_cost(p, tibidabo_descriptor(2));
  EXPECT_NEAR(r.makespan_lower_s, 2.0, 1e-9);
  EXPECT_NEAR(r.per_rank[1].finish_lower_s, 0.5, 1e-9);
}

TEST(StaticCost, ThrowsOnRankTreeMismatch) {
  Program p(4);
  CostDescriptor d;
  d.tree = net::tibidabo_tree(8);  // 16 slots for a 4-rank program
  EXPECT_THROW(analyze_cost(p, d), support::Error);
}

TEST(StaticCost, JsonDocumentIsSchemaValid) {
  Program p(4);
  for (std::uint32_t r = 0; r < 4; ++r)
    p.rank(r).push_back(Op::allreduce(1 << 20));
  const CostDescriptor d = tibidabo_descriptor(4);
  const CostReport cost = analyze_cost(p, d);
  const Report perf = perf_pass(p, d, cost);

  const auto doc =
      support::parse_json(static_analysis_to_json(cost, "unit", 7, perf));
  EXPECT_EQ(doc.at("schema").as_string(), "mb-static-analysis");
  EXPECT_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(doc.at("tool").as_string(), "mb_verify");
  EXPECT_FALSE(doc.at("tool_version").as_string().empty());
  EXPECT_EQ(doc.at("source").as_string(), "unit");
  EXPECT_EQ(doc.at("seed").as_number(), 7.0);
  EXPECT_EQ(doc.at("ranks").as_number(), 4.0);
  EXPECT_GT(doc.at("totals").at("payload_bytes").as_number(), 0.0);
  EXPECT_GE(doc.at("bounds").at("makespan_upper_s").as_number(),
            doc.at("bounds").at("makespan_lower_s").as_number());
  EXPECT_EQ(doc.at("per_rank").at("bytes_sent").as_array().size(), 4u);
  EXPECT_EQ(doc.at("per_rank").at("finish_lower_s").as_array().size(), 4u);
  EXPECT_GE(doc.at("link_classes").as_array().size(), 1u);
  EXPECT_EQ(doc.at("collectives").as_array().size(), 1u);
  ASSERT_NE(doc.find("findings"), nullptr);
  ASSERT_NE(doc.find("counts"), nullptr);
}

// ---------------------------------------------------------------------------
// PERF fixture corpus: one broken + one clean program per rule.

/// Runs the full static pipeline (verify gate, cost walk, PERF pass) the
/// way `mbctl analyze-static` does and returns the PERF findings.
Report perf_findings(const Program& p, const CostDescriptor& d,
                     const fault::FaultPlan* plan = nullptr) {
  const Report verdict = verify_program(p);
  EXPECT_FALSE(verdict.has_errors()) << render_diagnostics(verdict);
  return perf_pass(p, d, analyze_cost(p, d), plan);
}

TEST(PerfRules, Perf001FiresOnOneOverloadedSender) {
  // Rank 0 ships 8 MiB while everyone else moves a token: ratio and
  // absolute excess both clear the thresholds.
  Program p(8);
  p.rank(0).push_back(Op::send(4, 8 << 20, 1));
  p.rank(4).push_back(Op::recv(0, 1));
  for (std::uint32_t r = 1; r < 4; ++r) {
    p.rank(r).push_back(Op::send(r + 4, 1024, 2));
    p.rank(r + 4).push_back(Op::recv(r, 2));
  }
  const Report report = perf_findings(p, tibidabo_descriptor(8));
  EXPECT_TRUE(report.has_rule(kRulePerfImbalance))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf001QuietOnBalancedTraffic) {
  Program p(8);
  for (std::uint32_t r = 0; r < 4; ++r) {
    p.rank(r).push_back(Op::send(r + 4, 2 << 20, 1));
    p.rank(r + 4).push_back(Op::recv(r, 1));
  }
  const Report report = perf_findings(p, tibidabo_descriptor(8));
  EXPECT_FALSE(report.has_rule(kRulePerfImbalance))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf002FiresOnBigAlltoallOnCheapSwitches) {
  // 16 ranks x 256 KiB pair payload: each destination drains ~4 MiB
  // through a 128 KiB switch buffer at once.
  Program p(16);
  for (std::uint32_t r = 0; r < 16; ++r)
    p.rank(r).push_back(
        Op::alltoallv(std::vector<std::uint64_t>(16, 256 << 10)));
  const Report report = perf_findings(p, tibidabo_descriptor(16));
  EXPECT_TRUE(report.has_rule(kRulePerfIncast))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf002QuietWhenTheBurstFitsTheBuffer) {
  Program p(16);
  for (std::uint32_t r = 0; r < 16; ++r)
    p.rank(r).push_back(
        Op::alltoallv(std::vector<std::uint64_t>(16, 512)));
  const Report report = perf_findings(p, tibidabo_descriptor(16));
  EXPECT_FALSE(report.has_rule(kRulePerfIncast))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf003FiresOnAStructurallyLateSender) {
  // Rank 1 computes 5 s before sending; rank 0 posts its receive
  // immediately and can only wait.
  Program p(2);
  p.rank(0).push_back(Op::recv(1, 1));
  p.rank(1).push_back(Op::compute(5.0));
  p.rank(1).push_back(Op::send(0, 1024, 1));
  const Report report = perf_findings(p, tibidabo_descriptor(2));
  EXPECT_TRUE(report.has_rule(kRulePerfLateSender))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf003QuietWhenComputeIsBalanced) {
  Program p(2);
  p.rank(0).push_back(Op::compute(5.0));
  p.rank(0).push_back(Op::recv(1, 1));
  p.rank(1).push_back(Op::compute(5.0));
  p.rank(1).push_back(Op::send(0, 1024, 1));
  const Report report = perf_findings(p, tibidabo_descriptor(2));
  EXPECT_FALSE(report.has_rule(kRulePerfLateSender))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf004FiresWhenCrashesButNoCheckpointing) {
  Program p(2);
  p.rank(0).push_back(Op::compute(10.0));
  p.rank(1).push_back(Op::compute(10.0));
  fault::FaultPlan plan;
  plan.crashes.push_back({0, 5.0});
  plan.checkpoint.enabled = false;
  const Report report = perf_findings(p, tibidabo_descriptor(2), &plan);
  EXPECT_TRUE(report.has_rule(kRulePerfCheckpointInterval))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf004FiresOnAnIntervalFarFromYoungsOptimum) {
  Program p(2);
  p.rank(0).push_back(Op::compute(100.0));
  p.rank(1).push_back(Op::compute(100.0));
  fault::FaultPlan plan;
  plan.crashes.push_back({0, 50.0});
  plan.checkpoint.enabled = true;
  // MTBF 100 s, C = 64 MiB / 100 MB/s ~ 0.67 s, optimum ~ 11.6 s.
  plan.checkpoint.interval_s = 1000.0;
  const Report report = perf_findings(p, tibidabo_descriptor(2), &plan);
  EXPECT_TRUE(report.has_rule(kRulePerfCheckpointInterval))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf004QuietNearTheOptimum) {
  Program p(2);
  p.rank(0).push_back(Op::compute(100.0));
  p.rank(1).push_back(Op::compute(100.0));
  fault::FaultPlan plan;
  plan.crashes.push_back({0, 50.0});
  plan.checkpoint.enabled = true;
  const double mtbf = 100.0;
  const double cost_s = plan.checkpoint.state_bytes_per_rank /
                        plan.checkpoint.write_bandwidth_bytes_per_s;
  plan.checkpoint.interval_s = std::sqrt(2.0 * mtbf * cost_s);
  const Report report = perf_findings(p, tibidabo_descriptor(2), &plan);
  EXPECT_FALSE(report.has_rule(kRulePerfCheckpointInterval))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf004QuietWithoutAFaultPlan) {
  Program p(2);
  p.rank(0).push_back(Op::compute(1.0));
  p.rank(1).push_back(Op::compute(1.0));
  const Report report = perf_findings(p, tibidabo_descriptor(2));
  EXPECT_FALSE(report.has_rule(kRulePerfCheckpointInterval))
      << render_diagnostics(report);
}

/// Descriptor with two leaf switches: 8 nodes on 4-port switches.
CostDescriptor two_leaf_descriptor() {
  CostDescriptor d;
  d.tree = net::tibidabo_tree(8);
  d.tree.switch_ports = 4;
  return d;
}

TEST(PerfRules, Perf005FiresOnAStrideMappingAcrossTheRoot) {
  // Pairwise exchange with the partner 8 ranks away: degree 1, and every
  // byte crosses the root switch. Renumbering would localize all of it.
  Program p(16);
  for (std::uint32_t r = 0; r < 8; ++r) {
    const std::uint32_t partner = r + 8;
    p.rank(r).push_back(Op::send(partner, 1 << 20, 1));
    p.rank(r).push_back(Op::recv(partner, 2));
    p.rank(partner).push_back(Op::recv(r, 1));
    p.rank(partner).push_back(Op::send(r, 1 << 20, 2));
  }
  const Report report = perf_findings(p, two_leaf_descriptor());
  EXPECT_TRUE(report.has_rule(kRulePerfCrossSwitchMapping))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf005QuietOnAContiguousMapping) {
  // Same exchange volume, partner next door: everything stays inside a
  // leaf subtree.
  Program p(16);
  for (std::uint32_t r = 0; r < 16; r += 2) {
    const std::uint32_t partner = r + 1;
    p.rank(r).push_back(Op::send(partner, 1 << 20, 1));
    p.rank(r).push_back(Op::recv(partner, 2));
    p.rank(partner).push_back(Op::recv(r, 1));
    p.rank(partner).push_back(Op::send(r, 1 << 20, 2));
  }
  const Report report = perf_findings(p, two_leaf_descriptor());
  EXPECT_FALSE(report.has_rule(kRulePerfCrossSwitchMapping))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf006FiresOnATinyRingAllreduce) {
  Program p(16);
  for (std::uint32_t r = 0; r < 16; ++r)
    p.rank(r).push_back(Op::allreduce(64, "energy"));
  const Report report = perf_findings(p, tibidabo_descriptor(16));
  EXPECT_TRUE(report.has_rule(kRulePerfCollectiveAlgorithm))
      << render_diagnostics(report);
}

TEST(PerfRules, Perf006QuietOnABandwidthBoundAllreduce) {
  Program p(16);
  for (std::uint32_t r = 0; r < 16; ++r)
    p.rank(r).push_back(Op::allreduce(16 << 20, "gradients"));
  const Report report = perf_findings(p, tibidabo_descriptor(16));
  EXPECT_FALSE(report.has_rule(kRulePerfCollectiveAlgorithm))
      << render_diagnostics(report);
}

}  // namespace
}  // namespace mb::verify
