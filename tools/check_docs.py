#!/usr/bin/env python3
"""Docs consistency checker (no third-party dependencies).

Run from the repository root (CI and the `docs_check` ctest both do):

  python3 tools/check_docs.py

Checks
  1. The command set in mbctl's usage() text (tools/mbctl.cpp) matches the
     set of `## \`command\`` sections in docs/cli.md — a new subcommand
     cannot ship undocumented, and the doc cannot advertise a command that
     no longer exists.
  2. docs/cli.md documents every exit code declared in
     src/support/exit_codes.h.
  3. Every command whose usage() line advertises --sim-jobs documents the
     flag in its docs/cli.md section (the parallel-DES knob must not ship
     undocumented on any command that grows it).
  4. Every relative markdown link in the curated docs resolves to an
     existing file (anchors are stripped; external URLs are ignored).
  5. Every JSON schema name a writer stamps in src/ ("schema",
     "mb-...") has a '## `mb-...`' section in docs/schemas.md — a new
     document format cannot ship undocumented.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files whose relative links must resolve. Generated/provenance files
# (PAPERS.md retrieval dumps, SNIPPETS.md exemplars, ISSUE.md) are excluded:
# they quote external repos and are not part of the documentation site.
LINKED_DOCS = [
    "README.md",
    "ROADMAP.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "docs/schemas.md",
    "docs/cli.md",
    "docs/advisor.md",
]


def fail(errors):
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    sys.exit(1)


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return f.read()


def usage_commands(mbctl_source):
    """Command names from the usage() string literals in mbctl.cpp.

    Command lines render as two spaces + name; continuation lines are
    indented further and option/footer lines do not start with two spaces.
    """
    in_usage = False
    commands = []
    for line in mbctl_source.splitlines():
        stripped = line.strip()
        if '"usage: mbctl' in stripped:
            in_usage = True
            continue
        if not in_usage:
            continue
        m = re.match(r'^"  ([a-z][a-z0-9-]*)[ \\]', stripped)
        if m:
            commands.append(m.group(1))
        elif stripped.startswith('"platform:'):
            break
    return commands


def documented_commands(cli_md):
    return re.findall(r"^## `([a-z][a-z0-9-]*)`", cli_md, re.MULTILINE)


def declared_exit_codes(header):
    return re.findall(r"inline constexpr int kExit\w+ = (\d+);", header)


def check_commands(errors):
    usage = usage_commands(read("tools/mbctl.cpp"))
    documented = documented_commands(read("docs/cli.md"))
    if not usage:
        errors.append("could not parse any commands from mbctl usage()")
        return
    for missing in sorted(set(usage) - set(documented)):
        errors.append(f"docs/cli.md: command `{missing}` is in mbctl "
                      f"usage() but has no '## `{missing}`' section")
    for stale in sorted(set(documented) - set(usage)):
        errors.append(f"docs/cli.md: documents `{stale}`, which mbctl "
                      "usage() no longer lists")
    if usage == documented:
        return
    if set(usage) == set(documented):
        errors.append("docs/cli.md: command sections are ordered "
                      f"differently from usage(): {documented} vs {usage}")


def usage_flag_commands(mbctl_source, flag):
    """Commands whose usage() lines (incl. continuations) mention flag."""
    in_usage = False
    current = None
    hits = set()
    for line in mbctl_source.splitlines():
        stripped = line.strip()
        if '"usage: mbctl' in stripped:
            in_usage = True
            continue
        if not in_usage:
            continue
        if stripped.startswith('"platform:'):
            break
        m = re.match(r'^"  ([a-z][a-z0-9-]*)[ \\]', stripped)
        if m:
            current = m.group(1)
        if current and flag in stripped:
            hits.add(current)
    return hits


def section_bodies(cli_md):
    """Map of command name -> the body text of its `## ` section."""
    parts = re.split(r"^## `([a-z][a-z0-9-]*)`", cli_md, flags=re.MULTILINE)
    return {parts[i]: parts[i + 1] for i in range(1, len(parts), 2)}


def check_sim_jobs(errors):
    sections = section_bodies(read("docs/cli.md"))
    commands = usage_flag_commands(read("tools/mbctl.cpp"), "--sim-jobs")
    if not commands:
        errors.append("mbctl usage() no longer advertises --sim-jobs on any "
                      "command; update or drop this check")
    for cmd in sorted(commands):
        if "--sim-jobs" not in sections.get(cmd, ""):
            errors.append(f"docs/cli.md: `{cmd}` takes --sim-jobs but its "
                          "section does not document the flag")


def check_exit_codes(errors):
    cli_md = read("docs/cli.md")
    for code in declared_exit_codes(read("src/support/exit_codes.h")):
        if not re.search(rf"^\|\s*`?{code}`?\s*\|", cli_md, re.MULTILINE):
            errors.append(f"docs/cli.md: exit code {code} from "
                          "src/support/exit_codes.h is not documented")


SCHEMA_STAMP_RE = re.compile(r'"schema",\s*"(mb-[a-z-]+)"')


def emitted_schemas():
    """Schema names stamped by JSON writers anywhere under src/."""
    names = set()
    for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
        for name in files:
            if not name.endswith((".cpp", ".h")):
                continue
            rel = os.path.relpath(os.path.join(root, name), REPO)
            names.update(SCHEMA_STAMP_RE.findall(read(rel)))
    return names


def check_schemas(errors):
    documented = set(re.findall(r"^## `(mb-[a-z-]+)`", read("docs/schemas.md"),
                                re.MULTILINE))
    emitted = emitted_schemas()
    if not emitted:
        errors.append("could not find any schema stamps under src/; "
                      "update or drop this check")
    for missing in sorted(emitted - documented):
        errors.append(f"docs/schemas.md: schema `{missing}` is written by "
                      f"src/ but has no '## `{missing}`' section")


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(errors):
    for doc in LINKED_DOCS:
        if not os.path.exists(os.path.join(REPO, doc)):
            errors.append(f"{doc}: listed in check_docs.py but missing")
            continue
        base = os.path.dirname(os.path.join(REPO, doc))
        for target in LINK_RE.findall(read(doc)):
            if re.match(r"^[a-z]+:", target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            path = target.split("#", 1)[0]
            if not os.path.exists(os.path.normpath(os.path.join(base, path))):
                errors.append(f"{doc}: broken relative link -> {target}")


def main():
    errors = []
    check_commands(errors)
    check_exit_codes(errors)
    check_sim_jobs(errors)
    check_links(errors)
    check_schemas(errors)
    if errors:
        fail(errors)
    print("check_docs: OK")


if __name__ == "__main__":
    main()
