// mbctl — command-line front end to the montblanc toolkit.
//
//   mbctl platforms                      list built-in platforms
//   mbctl show <platform>                print its text description
//   mbctl topology <platform>            hwloc-style diagram
//   mbctl roofline <platform>            DP/SP roofs and ridge
//   mbctl membench <platform> [opts]     strided-bandwidth measurement
//       --size-kb N --stride N --bits 32|64|128 --unroll N --passes N
//   mbctl latency <platform> [opts]      pointer-chase latency
//       --size-kb N --hops N
//   mbctl tune-magicfilter <platform>    unroll sweep + sweet spot
//
// <platform> is a built-in name (snowball, xeon, tegra2, exynos5) or
// @path/to/file.platform in the arch::platform_io text format.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arch/platform_io.h"
#include "arch/platforms.h"
#include "arch/topology.h"
#include "core/param_space.h"
#include "core/search.h"
#include "kernels/latency.h"
#include "kernels/magicfilter.h"
#include "kernels/membench.h"
#include "sim/roofline.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: mbctl <command> [args]\n"
      "  platforms\n"
      "  show <platform>\n"
      "  topology <platform>\n"
      "  roofline <platform>\n"
      "  membench <platform> [--size-kb N] [--stride N] [--bits B]\n"
      "           [--unroll N] [--passes N]\n"
      "  latency <platform> [--size-kb N] [--hops N]\n"
      "  tune-magicfilter <platform>\n"
      "platform: snowball | xeon | tegra2 | exynos5 | @file\n";
  std::exit(error.empty() ? 0 : 2);
}

mb::arch::Platform resolve_platform(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') {
    std::ifstream in(spec.substr(1));
    if (!in) usage("cannot open platform file " + spec.substr(1));
    std::ostringstream text;
    text << in.rdbuf();
    return mb::arch::parse_platform(text.str());
  }
  if (spec == "snowball") return mb::arch::snowball();
  if (spec == "xeon" || spec == "xeon_x5550") return mb::arch::xeon_x5550();
  if (spec == "tegra2") return mb::arch::tegra2_node();
  if (spec == "exynos5") return mb::arch::exynos5();
  usage("unknown platform '" + spec + "'");
}

/// Trivial --key value option scanner.
class Options {
 public:
  Options(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument " + key);
      if (i + 1 >= argc) usage(key + " needs a value");
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_platforms() {
  mb::support::Table table({"Name", "Cores", "Freq (GHz)", "Peak DP GF",
                            "Peak SP GF", "Power (W)"});
  for (const auto& p : mb::arch::all_builtin_platforms()) {
    table.add_row({p.name, std::to_string(p.cores),
                   fmt_fixed(p.core.freq_hz / 1e9, 2),
                   fmt_fixed(p.peak_dp_gflops(), 1),
                   fmt_fixed(p.peak_sp_gflops(), 1),
                   fmt_fixed(p.power_w, 1)});
  }
  std::cout << table;
  return 0;
}

int cmd_show(const mb::arch::Platform& p) {
  std::cout << mb::arch::serialize_platform(p);
  return 0;
}

int cmd_topology(const mb::arch::Platform& p) {
  std::cout << mb::arch::render_topology(p);
  return 0;
}

int cmd_roofline(const mb::arch::Platform& p) {
  const auto dp = mb::sim::dp_roofline(p);
  const auto sp = mb::sim::sp_roofline(p);
  std::cout << p.name << '\n'
            << "  DP roof: " << fmt_fixed(dp.peak_gflops, 2)
            << " GFLOPS, ridge " << fmt_fixed(dp.ridge_intensity(), 2)
            << " flop/B\n"
            << "  SP roof: " << fmt_fixed(sp.peak_gflops, 2)
            << " GFLOPS, ridge " << fmt_fixed(sp.ridge_intensity(), 2)
            << " flop/B\n"
            << "  memory:  " << fmt_fixed(dp.bandwidth_gbs, 2) << " GB/s\n";
  return 0;
}

int cmd_membench(const mb::arch::Platform& p, Options& opts) {
  mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::kernels::MembenchParams params;
  params.array_bytes = opts.get_u64("size-kb", 48) * 1024;
  params.stride_elems =
      static_cast<std::uint32_t>(opts.get_u64("stride", 1));
  params.elem_bits = static_cast<std::uint32_t>(opts.get_u64("bits", 64));
  params.unroll = static_cast<std::uint32_t>(opts.get_u64("unroll", 4));
  params.passes = static_cast<std::uint32_t>(opts.get_u64("passes", 8));
  const auto r = mb::kernels::membench_run(machine, params);
  std::cout << "bandwidth: " << fmt_fixed(r.bandwidth_bytes_per_s / 1e9, 3)
            << " GB/s\n"
            << "time: " << r.sim.seconds * 1e6 << " us\n"
            << r.sim.counters.to_string();
  return 0;
}

int cmd_latency(const mb::arch::Platform& p, Options& opts) {
  mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::kernels::LatencyParams params;
  params.buffer_bytes = opts.get_u64("size-kb", 1024) * 1024;
  params.hops = static_cast<std::uint32_t>(opts.get_u64("hops", 4096));
  const auto r = mb::kernels::latency_run(machine, params);
  std::cout << "latency: " << fmt_fixed(r.cycles_per_hop, 1)
            << " cycles/hop (" << fmt_fixed(r.ns_per_hop, 1) << " ns)\n";
  return 0;
}

int cmd_tune_magicfilter(const mb::arch::Platform& p) {
  mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);
  std::vector<double> cycles;
  mb::support::Table table({"Unroll", "Cycles/output"});
  for (std::size_t i = 0; i < space.size(); ++i) {
    mb::kernels::MagicfilterParams params;
    params.n = 20;
    params.dims = 1;
    params.unroll =
        static_cast<std::uint32_t>(space.at(i).get("unroll"));
    const auto r = mb::kernels::magicfilter_run(machine, params);
    cycles.push_back(r.cycles_per_output);
    table.add_row({std::to_string(params.unroll),
                   fmt_fixed(r.cycles_per_output, 1)});
  }
  std::cout << table;
  const auto spot = mb::core::sweet_spot(space, cycles,
                                         mb::core::Direction::kMinimize);
  std::cout << "sweet spot: unroll in [" << spot.lo << ", " << spot.hi
            << "]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "platforms") return cmd_platforms();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    if (argc < 3) usage(cmd + " needs a platform argument");
    const auto platform = resolve_platform(argv[2]);
    Options opts(argc, argv, 3);
    if (cmd == "show") return cmd_show(platform);
    if (cmd == "topology") return cmd_topology(platform);
    if (cmd == "roofline") return cmd_roofline(platform);
    if (cmd == "membench") return cmd_membench(platform, opts);
    if (cmd == "latency") return cmd_latency(platform, opts);
    if (cmd == "tune-magicfilter") return cmd_tune_magicfilter(platform);
    usage("unknown command '" + cmd + "'");
  } catch (const std::exception& e) {
    std::cerr << "mbctl: " << e.what() << '\n';
    return 1;
  }
}
