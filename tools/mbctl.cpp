// mbctl — command-line front end to the montblanc toolkit.
//
//   mbctl platforms                      list built-in platforms
//   mbctl version                        print the tool version
//   mbctl show <platform>                print its text description
//   mbctl topology <platform>            hwloc-style diagram
//   mbctl roofline <platform>            DP/SP roofs and ridge
//   mbctl membench <platform> [opts]     strided-bandwidth measurement
//       --size-kb N --stride N --bits 32|64|128 --unroll N --passes N
//       --reps N --seed N [campaign opts]
//   mbctl latency <platform> [opts]      pointer-chase latency
//       --size-kb N --hops N --reps N --seed N [campaign opts]
//   mbctl tune-magicfilter <platform>    unroll sweep + sweet spot
//       [campaign opts]
//   mbctl bench-suite [opts]             curated deterministic suites
//       --suite smoke|scaling --reps N --seed N [campaign opts]
//       (scaling: cluster strong-scaling scenarios, --ranks R1,R2,...
//       --sim-jobs N; the CI scaling-gate's wall-clock probe)
//
// Campaign opts (measurement sweeps): --jobs N shards independent
// simulations across a work-stealing worker pool; output stays
// byte-identical to the serial run (per-task seeds are pure functions of
// the campaign seed + config, results commit in deterministic order).
// --cache-dir PATH / --no-cache control the content-addressed result
// cache (default .mb-cache): outcomes are keyed by (tool version, suite,
// platform, point, seed, fault plan), so re-running a sweep replays
// cached points and only simulates what changed.
//   mbctl fig4 [opts]                    BigDFT-on-Tibidabo trace study
//       --ranks N --iterations N --compute-s X --transpose-mb N --seed N
//       --sim-jobs N --trace-out PATH --json PATH [capture opts]
//   mbctl trace-export [opts]            cluster timeline -> trace file
//       --input t.{prv,mbt} --format paraver|chrome|mb-trace --out PATH
//       (no --input: runs the default fig4 scenario first; generating
//       straight to mb-trace streams through the bounded spill sink)
//   mbctl analyze [opts]                 automatic timeline analysis
//       --trace t.{prv,mbt} --timeseries ts.json --delay-factor X
//       --late-fraction X --top N --json PATH (no --trace: runs fig4)
//       stragglers, wait attribution, critical path, link hotspots
//   mbctl obs-report <profile.json>      render a profile document
//       --top N (siblings sort by exclusive time; keep the N worst)
//
// Capture opts (fig4, trace-export, analyze, chaos): --trace-ranks
// all|N|R1,R2,... --trace-buffer N --trace-kinds k1,k2,... switch the
// run to the bounded streaming trace sink (deterministic rank sampling,
// drop-oldest rings); --timeseries-out PATH --sample-interval X sample
// run gauges on the simulated-time grid into an mb-timeseries document.
//   mbctl compare <baseline.json> <candidate.json> [opts]
//       --threshold-sigma X --min-rel X
//       --budget-s X --wall-clock-s T   (wall-clock budget gate: exit 3
//       when the externally measured candidate wall time T exceeds X)
//   mbctl lint <platform|tree>           platform/model linter (pass 2)
//       targets: any <platform>, tibidabo-tree, upgraded-tree [--nodes N]
//       --json PATH
//   mbctl verify-mpi <app> [opts]        static MPI program verifier (pass 1)
//       apps: fig4 | bigdft | hpl | specfem | demo-deadlock
//       --ranks N --json PATH [--cost: also run the pass-3 cost
//       interpreter and PERF rules when the program verifies clean]
//   mbctl analyze-static <app> [opts]    abstract cost interpreter (pass 3)
//       apps: fig4 | bigdft | hpl | specfem
//       --ranks N --tree tibidabo|upgraded --mtu N --faults plan.json
//       --seed N --json PATH — predicts per-rank/aggregate traffic,
//       makespan lower/upper bounds and buffer pressure WITHOUT running
//       the DES, then applies the PERF001-PERF006 rule pack; --json
//       writes the versioned mb-static-analysis document
//
// lint and verify-mpi exit 0 when no error-severity findings exist and 3
// otherwise (same convention as compare); --json writes the versioned
// mb-diagnostics document for CI.
//   mbctl fuzz [opts]                    differential fuzzing harness
//       generates one seeded MPI program per seed in --seeds A..B and
//       cross-checks verifier vs DES, static bounds vs measured makespan,
//       serial vs sharded engine, and chaos-recovery determinism; any
//       disagreement writes an mb-repro bundle under --bundle-dir and
//       exits 3
//   mbctl replay <bundle.json>           re-execute an mb-repro bundle
//       byte-identically and re-check every recorded digest; --sim-jobs
//       overrides the sharded worker count (digests must not change)
//   mbctl advise <bigdft|magicfilter>    performance advisor (src/advise)
//       bigdft: runs the (optionally faulted) cluster scenario once,
//       cross-references the timeline analysis with the static cost and
//       PERF passes, and emits ranked mb-advice recommendations (migrate
//       a slowed node's ranks, switch the allreduce algorithm, retune
//       the checkpoint interval); magicfilter: sweeps the unroll
//       variants on --platform and cites the hierarchical-roofline
//       placement of the current one. --apply re-measures every
//       appliable recommendation — baseline vs candidate arms through
//       the campaign cache — and records accepted/rejected through the
//       compare noise gate; --json writes the mb-advice document
//
// Every measuring command accepts --json <path> and then also writes a
// machine-readable mb-bench-report document (core/bench_report.h). compare
// reads two such documents and exits 3 when a regression is confirmed
// beyond the pooled measurement noise.
//
// The global flag `--profile <out.json>` (any command, any position)
// enables the scoped-span profiler for the run and writes an mb-profile
// document (obs/profile.h) next to the command's normal output; reports
// written while profiling additionally embed the metrics snapshot so
// `compare` can attribute a regression to a phase.
//
// <platform> is a built-in name (snowball, xeon, tegra2, exynos5) or
// @path/to/file.platform in the arch::platform_io text format.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "advise/advice.h"
#include "advise/advisor.h"
#include "advise/apply.h"
#include "apps/bigdft.h"
#include "apps/cluster.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "arch/platform_io.h"
#include "arch/platforms.h"
#include "arch/topology.h"
#include "core/bench_report.h"
#include "core/campaign.h"
#include "core/compare.h"
#include "core/harness.h"
#include "core/param_space.h"
#include "core/result_cache.h"
#include "core/search.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "gen/bundle.h"
#include "gen/differential.h"
#include "gen/generator.h"
#include "kernels/chessbench.h"
#include "kernels/coremark.h"
#include "kernels/latency.h"
#include "kernels/linpack.h"
#include "kernels/magicfilter.h"
#include "kernels/membench.h"
#include "kernels/stencil.h"
#include "net/topology.h"
#include "obs/analysis.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "sim/roofline.h"
#include "support/check.h"
#include "support/executor.h"
#include "support/exit_codes.h"
#include "support/hash.h"
#include "support/table.h"
#include "support/version.h"
#include "trace/gantt.h"
#include "trace/mb_trace.h"
#include "trace/sink.h"
#include "trace/trace.h"
#include "verify/fault_lint.h"
#include "verify/mpi_verify.h"
#include "verify/perf_rules.h"
#include "verify/platform_lint.h"
#include "verify/static_cost.h"

namespace {

using mb::support::fmt_fixed;
using mb::support::kExitFindings;
using mb::support::kExitOk;
using mb::support::kExitUsage;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: mbctl [--profile PATH] <command> [args]\n"
      "  platforms\n"
      "  version\n"
      "  show <platform>\n"
      "  topology <platform>\n"
      "  roofline <platform> [--json PATH]\n"
      "  membench <platform> [--size-kb N] [--stride N] [--bits B]\n"
      "           [--unroll N] [--passes N] [--reps N] [--seed N]\n"
      "           [--json PATH] [campaign opts]\n"
      "  latency <platform> [--size-kb N] [--hops N] [--reps N] [--seed N]\n"
      "           [--json PATH] [campaign opts]\n"
      "  tune-magicfilter <platform> [--json PATH] [campaign opts]\n"
      "  bench-suite [--suite smoke|scaling] [--reps N] [--seed N]\n"
      "           [--ranks R1,R2,...] [--sim-jobs N] [--json PATH]\n"
      "           [campaign opts]\n"
      "  fig4 [--ranks N] [--iterations N] [--compute-s X]\n"
      "           [--transpose-mb N] [--seed N] [--sim-jobs N]\n"
      "           [--trace-out PATH] [--json PATH] [capture opts]\n"
      "  trace-export [--input trace.{prv,mbt}]\n"
      "           [--format paraver|chrome|mb-trace] [--out PATH]\n"
      "           [--delay-factor X] [fig4 options] [capture opts]\n"
      "  analyze [--trace trace.{prv,mbt}] [--timeseries ts.json]\n"
      "           [--delay-factor X] [--late-fraction X] [--top N]\n"
      "           [--json PATH] [fig4 options] [capture opts]\n"
      "  obs-report <profile.json> [--top N]\n"
      "  compare <baseline.json> <candidate.json> [--threshold-sigma X]\n"
      "           [--min-rel X] [--budget-s X --wall-clock-s T]\n"
      "  lint <platform|tibidabo-tree|upgraded-tree> [--nodes N]\n"
      "           [--json PATH]\n"
      "  verify-mpi <fig4|bigdft|hpl|specfem|demo-deadlock> [--ranks N]\n"
      "           [--cost] [--tree tibidabo|upgraded] [--mtu N] [--seed N]\n"
      "           [--json PATH] [app opts]\n"
      "  analyze-static <fig4|bigdft|hpl|specfem> [--ranks N]\n"
      "           [--tree tibidabo|upgraded] [--mtu N] [--faults plan.json]\n"
      "           [--seed N] [--json PATH] [app opts]\n"
      "           (app opts: bigdft/fig4 --iterations N --compute-s X\n"
      "           --transpose-mb N; hpl --n N --block N; specfem --steps N\n"
      "           --compute-s X --halo-kb N)\n"
      "  chaos <bigdft|hpl|specfem> --faults plan.json [--ranks N]\n"
      "           [--checkpoint on|off] [--checkpoint-interval X]\n"
      "           [--checkpoint-mb N] [--recv-timeout X] [--send-retries N]\n"
      "           [--max-restarts N] [--seed N] [--trace-out PATH]\n"
      "           [--json PATH] [capture opts]\n"
      "  fuzz [--seeds A..B] [--pattern halo|alltoall|pipeline|\n"
      "           master-worker|mixed] [--ranks N] [--rounds N]\n"
      "           [--min-bytes N] [--max-bytes N] [--defect-rate X]\n"
      "           [--tree tibidabo|upgraded] [--sim-jobs N] [--jobs N]\n"
      "           [--chaos-every N] [--seed N] [--bundle-dir PATH]\n"
      "           [--bundle-out PATH] [--pretend-clean] [--json PATH]\n"
      "  replay <bundle.json> [--sim-jobs N] [--jobs N]\n"
      "           [--bundle-out PATH]\n"
      "  advise <bigdft|magicfilter> [--apply] [--reps N] [--seed N]\n"
      "           [--json PATH] [campaign opts]\n"
      "           (bigdft: [--faults plan.json] [--ranks N]\n"
      "           [--iterations N] [--compute-s X] [--transpose-mb N]\n"
      "           [--recv-timeout X] [--send-retries N] [--max-restarts N]\n"
      "           [--tree tibidabo|upgraded] [--mtu N];\n"
      "           magicfilter: [--platform P] [--unroll N])\n"
      "platform: snowball | xeon | tegra2 | exynos5 | @file\n"
      "capture opts: [--trace-ranks all|N|R1,R2,...] [--trace-buffer N]\n"
      "[--trace-kinds all|k1,k2,...] [--timeseries-out PATH]\n"
      "[--sample-interval X] — any --trace-* flag replaces the unbounded\n"
      "trace collector with the bounded streaming sink: a count N samples\n"
      "N ranks deterministically from the seed, a comma list pins exact\n"
      "ranks, --trace-buffer caps records kept per rank (drop-oldest,\n"
      "default 65536) and --trace-kinds filters event kinds (compute,\n"
      "send, recv, wait, collective, fault). --timeseries-out samples\n"
      "run gauges every X simulated seconds (--sample-interval, default\n"
      "0.1; forces the serial engine) into an mb-timeseries document\n"
      "campaign opts: [--jobs N] [--no-cache] [--cache-dir PATH]\n"
      "[--cache-max-bytes N] — run the sweep on N worker threads\n"
      "(byte-identical output to --jobs 1) and cache simulation outcomes\n"
      "content-addressed under PATH (default .mb-cache); with a byte\n"
      "budget the oldest entries are evicted after the run, and corrupt\n"
      "entries are quarantined (renamed *.quarantined) instead of\n"
      "re-parsed; campaign/cache totals are reported on stderr\n"
      "--sim-jobs N shards the cluster discrete-event simulation across N\n"
      "workers under conservative lookahead; results are byte-identical to\n"
      "the serial engine (0 = classic serial queue)\n"
      "--profile enables the scoped-span profiler and writes an mb-profile\n"
      "document (read it back with obs-report)\n"
      "--seed defaults to the MB_SEED environment variable when set\n"
      "exit codes (all commands): 0 = success, 2 = usage error, 3 = the\n"
      "run worked but the answer is bad (error findings, confirmed\n"
      "regression, or an unrecovered chaos scenario)\n";
  // Usage errors abort before any worker pool is spawned, so the
  // multi-thread exit() hazard does not apply.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::exit(error.empty() ? kExitOk : kExitUsage);
}

mb::arch::Platform resolve_platform(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') {
    std::ifstream in(spec.substr(1));
    if (!in) usage("cannot open platform file " + spec.substr(1));
    std::ostringstream text;
    text << in.rdbuf();
    return mb::arch::parse_platform(text.str());
  }
  if (spec == "snowball") return mb::arch::snowball();
  if (spec == "xeon" || spec == "xeon_x5550") return mb::arch::xeon_x5550();
  if (spec == "tegra2") return mb::arch::tegra2_node();
  if (spec == "exynos5") return mb::arch::exynos5();
  usage("unknown platform '" + spec + "'");
}

/// Trivial --key value option scanner. A few flags take no value
/// (kValueless); everything else consumes the next argument.
class Options {
 public:
  Options(const std::vector<std::string>& args, std::size_t first) {
    static const std::vector<std::string> kValueless = {
        "no-cache", "cost", "pretend-clean", "apply"};
    for (std::size_t i = first; i < args.size(); ++i) {
      const std::string& key = args[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument " + key);
      const std::string name = key.substr(2);
      if (std::find(kValueless.begin(), kValueless.end(), name) !=
          kValueless.end()) {
        values_[name] = "1";
        continue;
      }
      if (i + 1 >= args.size()) usage(key + " needs a value");
      values_[name] = args[++i];
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      usage("--" + key + " expects an integer, got '" + it->second + "'");
    }
  }

  double get_f64(const std::string& key, double fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      std::size_t used = 0;
      const double v = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      usage("--" + key + " expects a number, got '" + it->second + "'");
    }
  }

  std::string get_str(const std::string& key, std::string fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Seed resolution shared by every seeded command: --seed wins, then the
/// MB_SEED environment variable (CI sets it once for a whole pipeline so
/// each step need not thread it through), then the command's default.
std::uint64_t effective_seed(Options& opts, std::uint64_t fallback) {
  if (opts.has("seed")) return opts.get_u64("seed", fallback);
  // Read during single-threaded argument parsing, before any worker pool
  // exists, so the mt-unsafe getenv race cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MB_SEED")) {
    const std::string text(env);
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      usage("MB_SEED expects an integer, got '" + text + "'");
    }
  }
  return fallback;
}

// Defined with the lint/verify-mpi commands below; used by every scenario
// command that validates configuration through lint rules.
void enforce_clean(const mb::verify::Report& report);

/// Applies the shared capture opts (see usage()) to a cluster config:
/// any --trace-* flag switches the run to the bounded streaming sink,
/// --timeseries-out arms the metrics time sampler.
void apply_capture_options(Options& opts, mb::apps::ClusterConfig& cluster,
                           std::uint64_t seed) {
  if (opts.has("trace-ranks") || opts.has("trace-buffer") ||
      opts.has("trace-kinds")) {
    cluster.streaming_trace = true;
    mb::trace::SinkConfig& sink = cluster.trace_sink;
    sink.seed = seed;
    sink.tool_version = std::string(mb::support::version());
    sink.ring_capacity = static_cast<std::uint32_t>(
        opts.get_u64("trace-buffer", sink.ring_capacity));
    const std::string spec = opts.get_str("trace-ranks", "all");
    if (spec.find(',') != std::string::npos) {
      std::stringstream ss(spec);
      std::string token;
      while (std::getline(ss, token, ',')) {
        if (token.empty()) continue;
        try {
          std::size_t used = 0;
          sink.rank_list.push_back(
              static_cast<std::uint32_t>(std::stoul(token, &used)));
          if (used != token.size()) throw std::invalid_argument(token);
        } catch (const std::exception&) {
          usage("--trace-ranks expects all, a count, or a comma list of "
                "rank ids, got '" +
                spec + "'");
        }
      }
      if (sink.rank_list.empty())
        usage("--trace-ranks rank list is empty: '" + spec + "'");
    } else if (spec != "all") {
      try {
        std::size_t used = 0;
        sink.sample_count =
            static_cast<std::uint32_t>(std::stoul(spec, &used));
        if (used != spec.size() || sink.sample_count == 0)
          throw std::invalid_argument(spec);
      } catch (const std::exception&) {
        usage("--trace-ranks expects all, a count, or a comma list of "
              "rank ids, got '" +
              spec + "'");
      }
    }
    if (opts.has("trace-kinds")) {
      try {
        sink.kind_mask = mb::trace::parse_event_kind_mask(
            opts.get_str("trace-kinds", "all"));
      } catch (const mb::support::Error& e) {
        usage(e.what());
      }
    }
  }
  if (opts.has("timeseries-out") || opts.has("sample-interval")) {
    cluster.timeseries.enabled = true;
    cluster.timeseries.interval_s = opts.get_f64("sample-interval", 0.1);
    if (cluster.timeseries.interval_s <= 0.0)
      usage("--sample-interval must be positive");
  }
}

/// Writes the mb-timeseries artifact when --timeseries-out was given.
void write_timeseries_artifact(Options& opts, mb::obs::TimeSeries& ts,
                               std::uint64_t seed) {
  if (!opts.has("timeseries-out")) return;
  ts.tool_version = std::string(mb::support::version());
  ts.seed = seed;
  const std::string path = opts.get_str("timeseries-out", "");
  std::ofstream out(path);
  if (!out) throw mb::support::Error("cannot open " + path + " for writing");
  out << mb::obs::to_json(ts) << '\n';
  if (!out) throw mb::support::Error("write to " + path + " failed");
  std::cerr << "wrote " << path << " (" << ts.times_s.size()
            << " samples, " << ts.series.size() << " series)\n";
}

/// Reads a trace file, sniffing the format: mb-trace v1 (binary) or the
/// Paraver text dump. Returns the capture-time drop count (mb-trace only).
std::uint64_t load_trace(const std::string& path, mb::trace::Trace& trace) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw mb::support::Error("cannot open trace " + path);
  if (mb::trace::is_mb_trace(in)) {
    mb::trace::MbTraceFile file = mb::trace::read_mb_trace(in);
    trace = std::move(file.trace);
    return file.meta.dropped;
  }
  trace = mb::trace::parse_paraver(in);
  return 0;
}

/// Campaign knobs shared by every sweeping command: --jobs, --no-cache,
/// --cache-dir, --cache-max-bytes (see the campaign-opts note in usage()).
mb::core::CampaignOptions campaign_options(Options& opts) {
  mb::core::CampaignOptions co;
  co.jobs = static_cast<std::uint32_t>(opts.get_u64("jobs", 1));
  if (co.jobs == 0) usage("--jobs must be at least 1");
  co.cache = !opts.has("no-cache");
  co.cache_dir = opts.get_str("cache-dir", ".mb-cache");
  co.cache_max_bytes = opts.get_u64("cache-max-bytes", 0);
  return co;
}

/// Runs a campaign and reports its totals on stderr — never on stdout,
/// where steal counts (timing-dependent) would break byte-identity.
mb::core::CampaignResult run_campaign_reported(
    const std::vector<mb::core::CampaignTask>& tasks,
    const mb::core::CampaignOptions& co) {
  auto result = mb::core::run_campaign(tasks, co);
  std::cerr << mb::core::campaign_summary(result.stats, co) << "\n";
  return result;
}

// --------------------------------------------------------------------------
// Structured-report helpers.

mb::core::PlatformInfo platform_info(const mb::arch::Platform& p) {
  mb::core::PlatformInfo info;
  info.name = p.name;
  info.cores = p.cores;
  info.freq_hz = p.core.freq_hz;
  info.power_w = p.power_w;
  info.peak_dp_gflops = p.peak_dp_gflops();
  info.peak_sp_gflops = p.peak_sp_gflops();
  return info;
}

void write_report(mb::core::BenchReport& report, const std::string& path) {
  // Profiled runs carry the registry snapshot so that `compare` can later
  // attribute an end-to-end regression to the phase whose counters moved.
  if (mb::obs::profiler().enabled() && report.metrics.empty())
    report.metrics = mb::obs::metrics().snapshot();
  std::ofstream out(path);
  if (!out) throw mb::support::Error("cannot open " + path + " for writing");
  out << mb::core::to_json(report);
  if (!out) throw mb::support::Error("write to " + path + " failed");
  std::cerr << "wrote " << path << " (" << report.records.size()
            << " benchmark records)\n";
}

void add_record(mb::core::BenchReport& report, std::string name,
                std::string platform, std::string metric, std::string unit,
                mb::core::Direction direction, std::vector<double> samples) {
  mb::core::BenchRecord record;
  record.name = std::move(name);
  record.platform = std::move(platform);
  record.metric = std::move(metric);
  record.unit = std::move(unit);
  record.direction = direction;
  record.samples = std::move(samples);
  report.records.push_back(std::move(record));
}

/// Runs `measure` on `reps` independently seeded machines (fresh physical
/// page placement each time — the paper's "new run" notion).
std::vector<double> run_reps(
    const mb::arch::Platform& p, mb::sim::PagePolicy policy,
    std::uint32_t reps, std::uint64_t seed,
    const std::function<double(mb::sim::Machine&)>& measure) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::uint32_t i = 0; i < reps; ++i) {
    mb::sim::Machine machine(p, policy, mb::support::Rng(seed + i));
    samples.push_back(measure(machine));
  }
  return samples;
}

// --------------------------------------------------------------------------
// Commands.

int cmd_platforms() {
  mb::support::Table table({"Name", "Cores", "Freq (GHz)", "Peak DP GF",
                            "Peak SP GF", "Power (W)"});
  for (const auto& p : mb::arch::all_builtin_platforms()) {
    table.add_row({p.name, std::to_string(p.cores),
                   fmt_fixed(p.core.freq_hz / 1e9, 2),
                   fmt_fixed(p.peak_dp_gflops(), 1),
                   fmt_fixed(p.peak_sp_gflops(), 1),
                   fmt_fixed(p.power_w, 1)});
  }
  std::cout << table;
  return 0;
}

int cmd_show(const mb::arch::Platform& p) {
  std::cout << mb::arch::serialize_platform(p);
  return 0;
}

int cmd_topology(const mb::arch::Platform& p) {
  std::cout << mb::arch::render_topology(p);
  return 0;
}

int cmd_roofline(const mb::arch::Platform& p, Options& opts) {
  const auto dp = mb::sim::dp_roofline(p);
  const auto sp = mb::sim::sp_roofline(p);
  std::cout << p.name << '\n'
            << "  DP roof: " << fmt_fixed(dp.peak_gflops, 2)
            << " GFLOPS, ridge " << fmt_fixed(dp.ridge_intensity(), 2)
            << " flop/B\n"
            << "  SP roof: " << fmt_fixed(sp.peak_gflops, 2)
            << " GFLOPS, ridge " << fmt_fixed(sp.ridge_intensity(), 2)
            << " flop/B\n"
            << "  memory:  " << fmt_fixed(dp.bandwidth_gbs, 2) << " GB/s\n";
  // The cache-level- and vector-width-aware hierarchy the advisor cites:
  // one compute ceiling per datapath, one bandwidth ceiling per level.
  const auto hier = mb::sim::hierarchical_dp_roofline(p);
  std::cout << "  compute roofs:\n";
  for (const auto& roof : hier.compute)
    std::cout << "    " << roof.name << ": " << fmt_fixed(roof.gflops, 2)
              << " GFLOPS\n";
  std::cout << "  memory roofs:\n";
  for (const auto& level : hier.levels) {
    std::cout << "    " << level.name << ": "
              << fmt_fixed(level.bandwidth_gbs, 2) << " GB/s";
    if (level.capacity_bytes > 0)
      std::cout << " (working sets <= " << level.capacity_bytes / 1024
                << " KiB)";
    std::cout << '\n';
  }
  std::cout << "  vector speedup: " << fmt_fixed(hier.vector_speedup(), 2)
            << "x over scalar\n";
  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "roofline";
    report.tool = "mbctl";
    report.seed = effective_seed(opts, 0);  // analytic, but CI keys on it
    report.add_platform(platform_info(p));
    const std::string base = "roofline/" + p.name;
    using D = mb::core::Direction;
    add_record(report, base + "/dp_peak", p.name, "gflops", "GFLOPS",
               D::kMaximize, {dp.peak_gflops});
    add_record(report, base + "/sp_peak", p.name, "gflops", "GFLOPS",
               D::kMaximize, {sp.peak_gflops});
    add_record(report, base + "/bandwidth", p.name, "bandwidth_gbs", "GB/s",
               D::kMaximize, {dp.bandwidth_gbs});
    for (const auto& level : hier.levels)
      add_record(report, base + "/" + level.name + "_bandwidth", p.name,
                 "bandwidth_gbs", "GB/s", D::kMaximize,
                 {level.bandwidth_gbs});
    add_record(report, base + "/vector_speedup", p.name, "ratio", "x",
               D::kMaximize, {hier.vector_speedup()});
    write_report(report, opts.get_str("json", ""));
  }
  return 0;
}

int cmd_membench(const mb::arch::Platform& p, Options& opts) {
  mb::kernels::MembenchParams params;
  params.array_bytes = opts.get_u64("size-kb", 48) * 1024;
  params.stride_elems =
      static_cast<std::uint32_t>(opts.get_u64("stride", 1));
  params.elem_bits = static_cast<std::uint32_t>(opts.get_u64("bits", 64));
  params.unroll = static_cast<std::uint32_t>(opts.get_u64("unroll", 4));
  params.passes = static_cast<std::uint32_t>(opts.get_u64("passes", 8));
  const auto reps =
      static_cast<std::uint32_t>(opts.get_u64("reps", 1));
  const std::uint64_t seed = effective_seed(opts, 1);
  if (reps == 0) usage("--reps must be at least 1");
  const auto co = campaign_options(opts);

  // One campaign task per repetition: each rep is an independently seeded
  // machine (fresh page placement), so reps shard cleanly across --jobs
  // and cache per (config, rep-seed).
  std::ostringstream point;
  point << "size_kb=" << params.array_bytes / 1024
        << " stride=" << params.stride_elems << " bits=" << params.elem_bits
        << " unroll=" << params.unroll << " passes=" << params.passes;
  std::vector<mb::core::CampaignTask> tasks;
  for (std::uint32_t i = 0; i < reps; ++i) {
    mb::core::CampaignTask task;
    task.key = {std::string(mb::support::version()), "membench", p.name,
                point.str(), seed + i, 0};
    task.run = [&p, params, s = seed + i]() {
      mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                               mb::support::Rng(s));
      return std::vector<double>{
          mb::kernels::membench_run(machine, params).bandwidth_bytes_per_s /
          1e9};
    };
    tasks.push_back(std::move(task));
  }
  const auto campaign = run_campaign_reported(tasks, co);
  std::vector<double> samples;
  samples.reserve(reps);
  for (const auto& s : campaign.samples) samples.push_back(s.at(0));
  if (reps == 1) {
    // Single run: keep the detailed counter dump.
    mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                             mb::support::Rng(seed));
    const auto r = mb::kernels::membench_run(machine, params);
    std::cout << "bandwidth: " << fmt_fixed(r.bandwidth_bytes_per_s / 1e9, 3)
              << " GB/s\n"
              << "time: " << r.sim.seconds * 1e6 << " us\n"
              << r.sim.counters.to_string();
  } else {
    const auto sum = mb::stats::summarize(samples);
    std::cout << "bandwidth: " << fmt_fixed(sum.mean, 3) << " GB/s mean of "
              << reps << " reps (stddev " << fmt_fixed(sum.stddev, 3)
              << ", min " << fmt_fixed(sum.min, 3) << ", max "
              << fmt_fixed(sum.max, 3) << ")\n";
  }
  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "membench";
    report.tool = "mbctl";
    report.seed = seed;
    report.plan.repetitions = reps;
    report.plan.seed = seed;
    report.add_platform(platform_info(p));
    std::ostringstream name;
    name << "membench/" << p.name << "/size_kb="
         << params.array_bytes / 1024 << " stride=" << params.stride_elems
         << " bits=" << params.elem_bits << " unroll=" << params.unroll;
    add_record(report, name.str(), p.name, "bandwidth_gbs", "GB/s",
               mb::core::Direction::kMaximize, samples);
    write_report(report, opts.get_str("json", ""));
  }
  return 0;
}

int cmd_latency(const mb::arch::Platform& p, Options& opts) {
  mb::kernels::LatencyParams params;
  params.buffer_bytes = opts.get_u64("size-kb", 1024) * 1024;
  params.hops = static_cast<std::uint32_t>(opts.get_u64("hops", 4096));
  const auto reps =
      static_cast<std::uint32_t>(opts.get_u64("reps", 1));
  const std::uint64_t seed = effective_seed(opts, 1);
  if (reps == 0) usage("--reps must be at least 1");

  const auto co = campaign_options(opts);

  // Per-rep tasks returning [ns_per_hop, cycles_per_hop] so both series
  // come back from one simulation (and one cache entry).
  std::ostringstream point;
  point << "size_kb=" << params.buffer_bytes / 1024
        << " hops=" << params.hops;
  std::vector<mb::core::CampaignTask> tasks;
  for (std::uint32_t i = 0; i < reps; ++i) {
    mb::core::CampaignTask task;
    task.key = {std::string(mb::support::version()), "latency", p.name,
                point.str(), seed + i, 0};
    task.run = [&p, params, s = seed + i]() {
      mb::sim::Machine machine(p, mb::sim::PagePolicy::kConsecutive,
                               mb::support::Rng(s));
      auto rep_params = params;
      rep_params.seed = s;
      const auto r = mb::kernels::latency_run(machine, rep_params);
      return std::vector<double>{r.ns_per_hop, r.cycles_per_hop};
    };
    tasks.push_back(std::move(task));
  }
  const auto campaign = run_campaign_reported(tasks, co);
  std::vector<double> samples;
  std::vector<double> cycles;
  for (const auto& s : campaign.samples) {
    samples.push_back(s.at(0));
    cycles.push_back(s.at(1));
  }
  std::cout << "latency: " << fmt_fixed(mb::stats::mean(cycles), 1)
            << " cycles/hop (" << fmt_fixed(mb::stats::mean(samples), 1)
            << " ns)";
  if (reps > 1) std::cout << " mean of " << reps << " reps";
  std::cout << "\n";
  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "latency";
    report.tool = "mbctl";
    report.seed = seed;
    report.plan.repetitions = reps;
    report.plan.seed = seed;
    report.add_platform(platform_info(p));
    std::ostringstream name;
    name << "latency/" << p.name << "/size_kb="
         << params.buffer_bytes / 1024;
    add_record(report, name.str(), p.name, "ns_per_hop", "ns",
               mb::core::Direction::kMinimize, samples);
    write_report(report, opts.get_str("json", ""));
  }
  return 0;
}

int cmd_tune_magicfilter(const mb::arch::Platform& p, Options& opts) {
  const std::uint64_t seed = effective_seed(opts, 1);
  const auto co = campaign_options(opts);
  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);

  // One task per unroll degree, each on its own machine whose RNG seed is
  // derived from the campaign seed + the point's config hash — points are
  // independent, so the sweep shards across --jobs and caches per point
  // while staying byte-identical to the serial walk.
  std::vector<mb::core::CampaignTask> tasks;
  for (std::size_t i = 0; i < space.size(); ++i) {
    mb::core::CampaignTask task;
    task.key = {std::string(mb::support::version()), "tune-magicfilter",
                p.name, space.at(i).to_string() + " n=20 dims=1", seed, 0};
    const auto unroll =
        static_cast<std::uint32_t>(space.at(i).get("unroll"));
    task.run = [&p, unroll, key = task.key]() {
      mb::sim::Machine machine(
          p, mb::sim::PagePolicy::kConsecutive,
          mb::support::Rng(mb::support::derive_seed(key.seed, key.hash())));
      mb::kernels::MagicfilterParams params;
      params.n = 20;
      params.dims = 1;
      params.unroll = unroll;
      return std::vector<double>{
          mb::kernels::magicfilter_run(machine, params).cycles_per_output};
    };
    tasks.push_back(std::move(task));
  }
  const auto campaign = run_campaign_reported(tasks, co);

  std::vector<double> cycles;
  mb::support::Table table({"Unroll", "Cycles/output"});
  for (std::size_t i = 0; i < space.size(); ++i) {
    cycles.push_back(campaign.samples[i].at(0));
    table.add_row(
        {std::to_string(static_cast<std::uint32_t>(space.at(i).get("unroll"))),
         fmt_fixed(cycles.back(), 1)});
  }
  std::cout << table;
  const auto spot = mb::core::sweet_spot(space, cycles,
                                         mb::core::Direction::kMinimize);
  std::cout << "sweet spot: unroll in [" << spot.lo << ", " << spot.hi
            << "]\n";
  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "tune-magicfilter";
    report.tool = "mbctl";
    report.seed = seed;
    report.add_platform(platform_info(p));
    for (std::size_t i = 0; i < space.size(); ++i) {
      add_record(report,
                 "magicfilter/" + p.name + "/" + space.at(i).to_string(),
                 p.name, "cycles_per_output", "cycles",
                 mb::core::Direction::kMinimize, {cycles[i]});
    }
    write_report(report, opts.get_str("json", ""));
  }
  return 0;
}

// --------------------------------------------------------------------------
// bench-suite: two curated deterministic suites emitted as consolidated
// reports that CI gates on. `--suite smoke` (default) covers the paper's
// Fig. 5 (RT-scheduler bimodality), Fig. 6 (membench variants), Fig. 7
// (magicfilter unrolling) and Table II (cross-platform kernels).
// `--suite scaling` runs the strong-scaling cluster scenarios (BigDFT /
// HPL / SPECFEM at --ranks counts) whose wall-clock the scaling-gate CI
// job budgets; its records are simulated quantities only (makespans and
// drop counts), so the JSON is byte-identical for any --sim-jobs value —
// the gate diffs serial against sharded output directly.

/// Parses the `--ranks 1024,4096` comma list for the scaling suite.
std::vector<std::uint32_t> parse_rank_list(const std::string& text) {
  std::vector<std::uint32_t> ranks;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      std::size_t used = 0;
      const unsigned long v = std::stoul(item, &used);
      if (used != item.size() || v == 0) throw std::invalid_argument(item);
      ranks.push_back(static_cast<std::uint32_t>(v));
    } catch (const std::exception&) {
      usage("--ranks expects a comma list of rank counts, got '" + text +
            "'");
    }
  }
  if (ranks.empty()) usage("--ranks expects at least one rank count");
  return ranks;
}

int cmd_bench_scaling(Options& opts) {
  const std::uint64_t seed = effective_seed(opts, 2013);
  const auto sim_jobs =
      static_cast<std::uint32_t>(opts.get_u64("sim-jobs", 0));
  const auto rank_list = parse_rank_list(opts.get_str("ranks", "1024,4096"));
  for (const std::uint32_t ranks : rank_list)
    enforce_clean(mb::verify::lint_rank_count(ranks, 2, "--ranks"));

  mb::core::BenchReport report;
  report.suite = "bench-scaling";
  report.tool = "mbctl";
  report.seed = seed;
  report.plan.repetitions = 1;
  report.plan.seed = seed;
  using D = mb::core::Direction;

  // The scenarios deliberately exaggerate communication density (tiny
  // compute between large transfers) so DES event throughput — not model
  // arithmetic — dominates, making them honest wall-clock probes of the
  // engine. Each rank count reuses the Tibidabo tree at matching size.
  const auto cluster = [&](std::uint32_t ranks, std::uint32_t mtu) {
    mb::apps::ClusterConfig c = mb::apps::tibidabo_cluster(ranks / 2);
    // Generator-produced programs; statically verified once by
    // tests/apps — skip re-verification in the timed loop.
    c.mpi.verify = false;
    c.sim_jobs = sim_jobs;
    if (mtu != 0) c.mtu_bytes = mtu;
    return c;
  };

  mb::support::Table table({"Scenario", "Makespan (s)", "Drops"});
  // Wall-clock is reported on stderr only: the JSON report and stdout
  // digest must stay byte-identical across --sim-jobs values and machine
  // speeds (the CI identity check literally `cmp`s two reports).
  double total_wall = 0.0;
  const auto run_one =
      [&](const std::string& app, std::uint32_t ranks,
          const std::function<mb::apps::AppRunResult()>& run) {
        const std::string base =
            "scaling/" + app + "/ranks=" + std::to_string(ranks);
        const auto t0 = std::chrono::steady_clock::now();
        mb::apps::AppRunResult result;
        {
          mb::obs::ScopedSpan span(mb::obs::profiler(), base);
          result = run();
        }
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        total_wall += wall;
        add_record(report, base + "/makespan", "tibidabo", "seconds", "s",
                   D::kMinimize, {result.makespan_s});
        add_record(report, base + "/drops", "tibidabo", "count", "frames",
                   D::kMinimize,
                   {static_cast<double>(result.network_drops)});
        table.add_row({base, mb::support::fmt_eng(result.makespan_s),
                       std::to_string(result.network_drops)});
        std::cerr << base << ": wall " << fmt_fixed(wall, 2) << " s\n";
      };

  for (const std::uint32_t ranks : rank_list) {
    run_one("specfem", ranks, [&] {
      mb::apps::SpecfemParams p;
      p.ranks = ranks;
      p.steps = 8;
      p.compute_s_per_step = 200.0;
      p.halo_bytes = 64 * 1024;
      p.seed = seed;
      return mb::apps::run_specfem(cluster(ranks, 0), p);
    });
    run_one("hpl", ranks, [&] {
      mb::apps::HplParams p;
      p.ranks = ranks;
      p.n = 4096;
      p.block = 128;
      return mb::apps::run_hpl(cluster(ranks, 1u << 20), p);
    });
    // BigDFT's all-to-all transpose is O(ranks^2) messages; past 1024
    // ranks it stops probing the engine and just burns CI minutes.
    if (ranks <= 1024) {
      run_one("bigdft", ranks, [&] {
        mb::apps::BigDftParams p;
        p.ranks = ranks;
        p.iterations = 1;
        p.transposes = 1;
        p.allreduces = 0;
        p.compute_s_per_iter = 100.0;
        p.transpose_bytes = 64ull << 20;
        p.seed = seed;
        return mb::apps::run_bigdft(cluster(ranks, 0), p);
      });
    }
  }

  std::cout << "=== bench-suite scaling (seed " << seed << ", sim-jobs "
            << sim_jobs << ") ===\n"
            << table;
  std::cerr << "scaling suite wall-clock: " << fmt_fixed(total_wall, 2)
            << " s (sim-jobs " << sim_jobs << ")\n";

  if (opts.has("json")) write_report(report, opts.get_str("json", ""));
  return 0;
}

int cmd_bench_suite(Options& opts) {
  const std::string suite = opts.get_str("suite", "smoke");
  if (suite == "scaling") return cmd_bench_scaling(opts);
  if (suite != "smoke") usage("--suite expects smoke|scaling");
  const auto reps = static_cast<std::uint32_t>(opts.get_u64("reps", 8));
  const std::uint64_t seed = effective_seed(opts, 2013);
  if (reps == 0) usage("--reps must be at least 1");
  const auto co = campaign_options(opts);
  // Shards the two Harness sweeps below by machine slot; Harness
  // guarantees byte-identical results for any worker count.
  mb::core::Executor harness_exec(co.jobs);
  using D = mb::core::Direction;

  const auto snowball = mb::arch::snowball();
  const auto xeon = mb::arch::xeon_x5550();
  const auto tegra2 = mb::arch::tegra2_node();

  mb::core::BenchReport report;
  report.suite = "bench-suite";
  report.tool = "mbctl";
  report.seed = seed;
  report.plan.repetitions = reps;
  report.plan.fresh_machine_per_rep = true;
  report.plan.seed = seed;
  report.add_platform(platform_info(snowball));
  report.add_platform(platform_info(xeon));
  report.add_platform(platform_info(tegra2));

  // Fig. 5: stride-1 membench on the Snowball under the anomalous
  // real-time scheduler, randomized placement — the suite's canary for
  // bimodal distributions (compare must not false-alarm on these).
  {
    mb::core::MachineFactory factory = [&](std::uint64_t s) {
      return mb::sim::Machine(snowball, mb::sim::PagePolicy::kReuseBiased,
                              mb::support::Rng(s));
    };
    mb::core::MeasurementPlan plan;
    plan.repetitions = reps * 3;  // mode detection needs a few extra samples
    plan.fresh_machine_per_rep = false;
    plan.seed = seed;
    mb::core::ParamSpace space;
    space.add("array_kb", {8, 32});
    mb::core::Workload workload = [](const mb::core::Point& pt,
                                     mb::sim::Machine& m) {
      mb::kernels::MembenchParams mp;
      mp.array_bytes =
          static_cast<std::uint64_t>(pt.get("array_kb")) * 1024;
      mp.stride_elems = 1;
      mp.elem_bits = 32;
      mp.passes = 4;
      const auto r = mb::kernels::membench_run(m, mp);
      return r.bandwidth_bytes_per_s / 1e9;
    };
    mb::core::Harness harness(
        factory,
        std::make_unique<mb::os::RealTimeAnomalous>(mb::support::Rng(seed)),
        plan);
    const auto results = harness.run(space, workload, harness_exec);
    mb::core::append_resultset(report, space, results, "fig5-rt/snowball",
                               snowball.name, "bandwidth_gbs", "GB/s",
                               D::kMaximize);
  }

  // Fig. 6: vectorization/unrolling variants of membench on the Snowball
  // under fair scheduling with randomized page placement.
  {
    mb::core::MachineFactory factory = [&](std::uint64_t s) {
      return mb::sim::Machine(snowball, mb::sim::PagePolicy::kReuseBiased,
                              mb::support::Rng(s));
    };
    mb::core::MeasurementPlan plan;
    plan.repetitions = reps;
    plan.seed = seed + 1;
    mb::core::ParamSpace space;
    space.add("bits", {32, 128});
    space.add("unroll", {1, 4});
    mb::core::Workload workload = [](const mb::core::Point& pt,
                                     mb::sim::Machine& m) {
      mb::kernels::MembenchParams mp;
      mp.array_bytes = 48 * 1024;
      mp.stride_elems = 1;
      mp.elem_bits = static_cast<std::uint32_t>(pt.get("bits"));
      mp.unroll = static_cast<std::uint32_t>(pt.get("unroll"));
      mp.passes = 4;
      const auto r = mb::kernels::membench_run(m, mp);
      return r.bandwidth_bytes_per_s / 1e9;
    };
    mb::core::Harness harness(
        factory,
        std::make_unique<mb::os::FairScheduler>(mb::support::Rng(seed + 1)),
        plan);
    const auto results = harness.run(space, workload, harness_exec);
    mb::core::append_resultset(report, space, results, "membench/snowball",
                               snowball.name, "bandwidth_gbs", "GB/s",
                               D::kMaximize);
  }

  // Short stable keys for record names (full platform metadata lives in
  // the report's "platforms" section).
  struct Node {
    const mb::arch::Platform* platform;
    const char* key;
  };
  const Node kSnowball{&snowball, "snowball"};
  const Node kXeon{&xeon, "xeon"};
  const Node kTegra2{&tegra2, "tegra2"};

  // The remaining records are independent rep-loops — ideal campaign
  // tasks. Each task reruns its serial run_reps body verbatim (same
  // policy, seeds and order within the task), so samples are
  // byte-identical to the pre-campaign suite; tasks shard across --jobs
  // and cache individually. Records are appended strictly in task order
  // after the campaign drains, keeping the report layout deterministic.
  struct PendingRecord {
    std::string name;
    std::string platform;
    std::string metric;
    std::string unit;
    D direction;
  };
  std::vector<PendingRecord> pending;
  std::vector<mb::core::CampaignTask> tasks;
  const auto add_task =
      [&](std::string name, const mb::arch::Platform& plat,
          std::string metric, std::string unit, D direction,
          mb::sim::PagePolicy policy, std::uint64_t task_seed,
          std::function<double(mb::sim::Machine&)> measure) {
        pending.push_back({name, plat.name, metric, unit, direction});
        mb::core::CampaignTask task;
        task.key = {std::string(mb::support::version()), "bench-suite",
                    plat.name, name + " reps=" + std::to_string(reps),
                    task_seed, 0};
        task.run = [&plat, policy, reps, task_seed,
                    measure = std::move(measure)]() {
          return run_reps(plat, policy, reps, task_seed, measure);
        };
        tasks.push_back(std::move(task));
      };

  // Latency curves (model self-validation points) on both Table II nodes.
  for (const Node& node : {kSnowball, kXeon}) {
    for (const std::uint64_t kb : {64, 512}) {
      add_task("latency/" + std::string(node.key) +
                   "/size_kb=" + std::to_string(kb),
               *node.platform, "ns_per_hop", "ns", D::kMinimize,
               mb::sim::PagePolicy::kReuseBiased, seed + 2 + kb,
               [seed, kb](mb::sim::Machine& m) {
                 mb::kernels::LatencyParams lp;
                 lp.buffer_bytes = kb * 1024;
                 lp.hops = 2048;
                 lp.seed = seed + kb;
                 return mb::kernels::latency_run(m, lp).ns_per_hop;
               });
    }
  }

  // Fig. 7: magicfilter unrolling staircase on Tegra2 and Xeon.
  for (const Node& node : {kTegra2, kXeon}) {
    for (const std::uint32_t unroll : {2u, 6u, 10u}) {
      add_task("magicfilter/" + std::string(node.key) +
                   "/unroll=" + std::to_string(unroll),
               *node.platform, "cycles_per_output", "cycles", D::kMinimize,
               mb::sim::PagePolicy::kConsecutive, seed + 7,
               [unroll](mb::sim::Machine& m) {
                 mb::kernels::MagicfilterParams mp;
                 mp.n = 16;
                 mp.dims = 1;
                 mp.unroll = unroll;
                 return mb::kernels::magicfilter_run(m, mp).cycles_per_output;
               });
    }
  }

  // Table II kernels on both nodes (small instances, per-core metrics).
  for (const Node& node : {kSnowball, kXeon}) {
    const mb::arch::Platform& p = *node.platform;
    const std::string key(node.key);
    add_task("linpack/" + key, p, "mflops", "MFLOPS", D::kMaximize,
             mb::sim::PagePolicy::kReuseBiased, seed + 11,
             [](mb::sim::Machine& m) {
               mb::kernels::LinpackParams lp;
               lp.n = 64;
               lp.block = 16;
               return mb::kernels::linpack_run(m, lp).mflops;
             });
    add_task("coremark/" + key, p, "iterations_per_s", "ops/s", D::kMaximize,
             mb::sim::PagePolicy::kReuseBiased, seed + 12,
             [](mb::sim::Machine& m) {
               mb::kernels::CoremarkParams cp;
               cp.iterations = 4;
               return mb::kernels::coremark_run(m, cp).iterations_per_s;
             });
    add_task("chessbench/" + key, p, "nodes_per_s", "nodes/s", D::kMaximize,
             mb::sim::PagePolicy::kReuseBiased, seed + 13,
             [](mb::sim::Machine& m) {
               mb::kernels::ChessbenchParams cp;
               cp.depth = 3;
               cp.positions = 2;
               return mb::kernels::chessbench_run(m, cp).nodes_per_s;
             });
    add_task("stencil/" + key, p, "seconds", "s", D::kMinimize,
             mb::sim::PagePolicy::kReuseBiased, seed + 14,
             [](mb::sim::Machine& m) {
               mb::kernels::StencilParams sp;
               sp.n = 10;
               sp.steps = 10;
               return mb::kernels::stencil_run(m, sp).sim.seconds;
             });
  }

  const auto campaign = run_campaign_reported(tasks, co);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    add_record(report, pending[i].name, pending[i].platform,
               pending[i].metric, pending[i].unit, pending[i].direction,
               campaign.samples[i]);
  }

  // Human-readable digest.
  mb::support::Table table({"Benchmark", "Metric", "Median", "CV %", "Modes"});
  for (const auto& r : report.records) {
    const auto sum = r.summary();
    const double cv =
        sum.mean != 0.0 ? 100.0 * sum.stddev / sum.mean : 0.0;
    table.add_row({r.name, r.metric, mb::support::fmt_eng(sum.median),
                   fmt_fixed(cv, 1), r.modes().bimodal ? "2" : "1"});
  }
  std::cout << "=== bench-suite (seed " << seed << ", " << reps
            << " reps) ===\n"
            << table;

  if (opts.has("json")) write_report(report, opts.get_str("json", ""));
  return 0;
}

// --------------------------------------------------------------------------
// fig4 / trace-export / obs-report: the paper's Sec. IV tracing workflow.

/// Runs the Fig. 4 BigDFT-on-Tibidabo scenario with CLI overrides. The
/// defaults match bench/fig4_trace.cpp: 36 ranks on 18 dual-core boards,
/// 12 SCF iterations, the borderline-incast 12 MiB transpose.
mb::apps::AppRunResult run_fig4_scenario(Options& opts,
                                         const std::string& spill_path = {}) {
  mb::apps::BigDftParams params;
  params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 36));
  params.iterations =
      static_cast<std::uint32_t>(opts.get_u64("iterations", 12));
  params.compute_s_per_iter = opts.get_f64("compute-s", 2.0);
  params.transpose_bytes = opts.get_u64("transpose-mb", 12) << 20;
  params.seed = effective_seed(opts, 1);
  enforce_clean(mb::verify::lint_rank_count(params.ranks, 2, "--ranks"));
  mb::apps::ClusterConfig cluster =
      mb::apps::tibidabo_cluster(params.ranks / 2);
  cluster.sim_jobs =
      static_cast<std::uint32_t>(opts.get_u64("sim-jobs", 0));
  apply_capture_options(opts, cluster, params.seed);
  if (!spill_path.empty()) {
    // Stream straight into the mb-trace file: memory stays bounded no
    // matter how many records the run emits.
    cluster.streaming_trace = true;
    cluster.trace_sink.spill_path = spill_path;
    cluster.trace_sink.seed = params.seed;
    cluster.trace_sink.tool_version = std::string(mb::support::version());
    if (cluster.trace_sink.ring_capacity == 0)
      cluster.trace_sink.ring_capacity = 65536;
  }
  mb::apps::AppRunResult result;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "fig4/simulate");
    result = mb::apps::run_bigdft(cluster, params);
  }
  result.trace.set_provenance(std::string(mb::support::version()),
                              params.seed);
  if (result.trace_dropped > 0) {
    std::cerr << "trace: ring overflow dropped " << result.trace_dropped
              << " record(s); raise --trace-buffer or narrow "
                 "--trace-ranks/--trace-kinds\n";
  }
  return result;
}

int cmd_fig4(Options& opts) {
  auto result = run_fig4_scenario(opts);
  write_timeseries_artifact(opts, result.timeseries,
                            effective_seed(opts, 1));

  mb::trace::CollectiveReport collectives;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "fig4/analyze");
    collectives = mb::trace::analyze_collectives(result.trace, "alltoallv");
  }

  mb::obs::ScopedSpan span(mb::obs::profiler(), "fig4/report");
  std::cout << "=== fig4: BigDFT trace study ===\n"
            << "ranks:               " << result.trace.ranks() << '\n'
            << "makespan:            " << fmt_fixed(result.makespan_s, 3)
            << " s\n"
            << "alltoallv instances: " << collectives.instances.size() << '\n'
            << "median duration:     "
            << fmt_fixed(collectives.median_duration * 1e3, 2) << " ms\n"
            << "delayed (>2x med.):  " << collectives.delayed_count << '\n'
            << "partial delays seen: "
            << (collectives.has_partial_delays ? "yes" : "no") << '\n'
            << "network drops:       " << result.network_drops << "\n\n";

  mb::support::Table table({"Instance", "Start (s)", "Duration (ms)",
                            "Classification", "Slow ranks"});
  for (const auto& inst : collectives.instances) {
    table.add_row({std::to_string(inst.index), fmt_fixed(inst.start, 3),
                   fmt_fixed(inst.duration * 1e3, 2),
                   inst.delayed ? "DELAYED" : "normal",
                   inst.delayed ? std::to_string(inst.slow_ranks) : "-"});
  }
  std::cout << table << '\n';

  mb::trace::GanttOptions gopt;
  gopt.width = 100;
  gopt.max_ranks = 12;
  gopt.t1 = 1.0;
  std::cout << "--- timeline (first second) ---\n"
            << mb::trace::render_gantt(result.trace, gopt) << '\n';

  if (opts.has("trace-out")) {
    const std::string path = opts.get_str("trace-out", "");
    std::ofstream out(path);
    if (!out)
      throw mb::support::Error("cannot open " + path + " for writing");
    result.trace.write_paraver(out);
    if (!out) throw mb::support::Error("write to " + path + " failed");
    std::cerr << "wrote " << path << " (" << result.trace.size()
              << " trace records)\n";
  }

  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "fig4";
    report.tool = "mbctl";
    report.seed = effective_seed(opts, 1);
    using D = mb::core::Direction;
    add_record(report, "fig4/makespan", "tibidabo", "seconds", "s",
               D::kMinimize, {result.makespan_s});
    add_record(report, "fig4/delayed_collectives", "tibidabo", "count",
               "instances", D::kMinimize,
               {static_cast<double>(collectives.delayed_count)});
    add_record(report, "fig4/network_drops", "tibidabo", "count", "frames",
               D::kMinimize, {static_cast<double>(result.network_drops)});
    write_report(report, opts.get_str("json", ""));
  }
  return 0;
}

int cmd_trace_export(Options& opts) {
  const std::string format = opts.get_str("format", "chrome");
  if (format != "chrome" && format != "paraver" && format != "mb-trace")
    usage("--format must be 'paraver', 'chrome' or 'mb-trace', got '" +
          format + "'");
  if (format == "mb-trace" && !opts.has("out"))
    usage("--format mb-trace writes a binary file and needs --out PATH");

  // Simulate-to-mb-trace streams records into the file as the run
  // produces them (bounded memory at any rank count) — no in-memory
  // trace ever exists.
  if (format == "mb-trace" && !opts.has("input")) {
    const std::string path = opts.get_str("out", "");
    const auto result = run_fig4_scenario(opts, path);
    std::cerr << "wrote " << path << " (mb-trace, "
              << result.trace_sampled_ranks.size()
              << " sampled ranks streamed)\n";
    return 0;
  }

  mb::trace::Trace trace;
  std::uint64_t dropped = 0;
  if (opts.has("input")) {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "trace-export/parse");
    dropped = load_trace(opts.get_str("input", ""), trace);
  } else {
    trace = run_fig4_scenario(opts).trace;
  }

  mb::obs::ScopedSpan span(mb::obs::profiler(), "trace-export/write");
  std::ofstream file;
  std::ostream* os = &std::cout;
  if (opts.has("out")) {
    const std::string path = opts.get_str("out", "");
    file.open(path, format == "mb-trace"
                        ? std::ios::out | std::ios::binary
                        : std::ios::out);
    if (!file)
      throw mb::support::Error("cannot open " + path + " for writing");
    os = &file;
  }
  if (format == "chrome") {
    mb::obs::ChromeTraceOptions copt;
    copt.delay_factor = opts.get_f64("delay-factor", 2.0);
    mb::obs::write_chrome_trace(*os, trace, copt);
  } else if (format == "mb-trace") {
    mb::trace::MbTraceMeta meta;
    meta.tool_version = trace.has_provenance()
                            ? trace.tool_version()
                            : std::string(mb::support::version());
    meta.seed =
        trace.has_provenance() ? trace.seed() : effective_seed(opts, 1);
    meta.total_ranks = trace.ranks();
    meta.dropped = dropped;
    mb::trace::write_mb_trace(*os, trace, meta);
  } else {
    trace.write_paraver(*os);
  }
  if (!*os) throw mb::support::Error("trace-export write failed");
  if (opts.has("out"))
    std::cerr << "wrote " << opts.get_str("out", "") << " (" << format
              << ", " << trace.size() << " records, " << trace.ranks()
              << " ranks)\n";
  return 0;
}

int cmd_analyze(Options& opts) {
  mb::obs::AnalysisOptions aopt;
  aopt.delay_factor = opts.get_f64("delay-factor", aopt.delay_factor);
  aopt.late_fraction = opts.get_f64("late-fraction", aopt.late_fraction);
  if (aopt.late_fraction <= 0.0 || aopt.late_fraction >= 1.0)
    usage("--late-fraction must be in (0, 1)");
  aopt.top = static_cast<std::size_t>(opts.get_u64("top", aopt.top));

  mb::trace::Trace trace;
  mb::obs::TimeSeries timeseries;
  std::uint64_t dropped = 0;
  if (opts.has("trace")) {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "analyze/parse");
    dropped = load_trace(opts.get_str("trace", ""), trace);
  } else {
    auto result = run_fig4_scenario(opts);
    write_timeseries_artifact(opts, result.timeseries,
                              effective_seed(opts, 1));
    trace = std::move(result.trace);
    timeseries = std::move(result.timeseries);
    dropped = result.trace_dropped;
  }
  if (opts.has("timeseries")) {
    const std::string path = opts.get_str("timeseries", "");
    std::ifstream in(path);
    if (!in) throw mb::support::Error("cannot open timeseries " + path);
    std::ostringstream text;
    text << in.rdbuf();
    timeseries = mb::obs::timeseries_from_json(text.str());
  }

  mb::obs::Analysis analysis;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "analyze/analyze");
    analysis = mb::obs::analyze_timeline(
        trace, timeseries.empty() ? nullptr : &timeseries, aopt);
  }
  std::cout << mb::obs::render_analysis(analysis);
  if (dropped > 0)
    std::cerr << "note: capture dropped " << dropped
              << " record(s); wait totals are a lower bound\n";
  if (opts.has("json")) {
    const std::string path = opts.get_str("json", "");
    std::ofstream out(path);
    if (!out)
      throw mb::support::Error("cannot open " + path + " for writing");
    out << mb::obs::to_json(analysis) << '\n';
    if (!out) throw mb::support::Error("write to " + path + " failed");
    std::cerr << "wrote " << path << " (mb-analysis v"
              << analysis.schema_version << ")\n";
  }
  return 0;
}

int cmd_obs_report(const std::string& path, Options& opts) {
  std::ifstream in(path);
  if (!in) throw mb::support::Error("cannot open profile " + path);
  std::ostringstream text;
  text << in.rdbuf();
  mb::obs::SpanRenderOptions ropt;  // hotspot sort is the default
  ropt.top = static_cast<std::size_t>(opts.get_u64("top", 0));
  std::cout << mb::obs::render_profile(mb::obs::profile_from_json(text.str()),
                                       ropt);
  return 0;
}

mb::core::BenchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw mb::support::Error("cannot open report " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return mb::core::report_from_json(text.str());
}

int cmd_compare(const std::string& baseline_path,
                const std::string& candidate_path, Options& opts) {
  const auto baseline = load_report(baseline_path);
  const auto candidate = load_report(candidate_path);
  mb::core::CompareOptions copts;
  copts.threshold_sigma = opts.get_f64("threshold-sigma", 3.0);
  copts.min_rel_delta = opts.get_f64("min-rel", 0.02);
  // Wall-clock budget gate (the scaling-gate CI job): the caller times
  // the candidate run externally and passes the measurement in, so the
  // deterministic report itself never carries machine-speed numbers.
  const double budget_s = opts.get_f64("budget-s", 0.0);
  const double wall_clock_s = opts.get_f64("wall-clock-s", -1.0);
  if (budget_s > 0.0 && wall_clock_s < 0.0)
    usage("--budget-s needs --wall-clock-s (the measured candidate wall "
          "time in seconds)");

  const auto result = mb::core::compare_reports(baseline, candidate, copts);

  mb::support::Table table(
      {"Benchmark", "Baseline", "Candidate", "Delta %", "Sigma", "Verdict"});
  for (const auto& e : result.entries) {
    const bool matched = e.verdict != mb::core::Verdict::kBaselineOnly &&
                         e.verdict != mb::core::Verdict::kCandidateOnly;
    table.add_row(
        {e.name,
         e.verdict == mb::core::Verdict::kCandidateOnly
             ? "-"
             : mb::support::fmt_eng(e.baseline_center),
         e.verdict == mb::core::Verdict::kBaselineOnly
             ? "-"
             : mb::support::fmt_eng(e.candidate_center),
         matched ? fmt_fixed(100.0 * e.rel_delta, 2) : "-",
         matched ? fmt_fixed(e.sigma_delta, 1) : "-",
         std::string(mb::core::verdict_name(e.verdict)) +
             (e.baseline_bimodal ? " (bimodal baseline)" : "")});
  }
  std::cout << table;
  std::cout << result.regressions << " regression(s), "
            << result.improvements << " improvement(s), "
            << result.unmatched << " unmatched, threshold "
            << copts.threshold_sigma << " sigma / "
            << fmt_fixed(100.0 * copts.min_rel_delta, 1) << "% min delta\n";

  // When verdicts differ, name both seeds: a regression between reports
  // measured under different seeds may be placement/scheduler noise, and
  // that must be diagnosable from this log alone.
  if (result.regressions + result.improvements > 0) {
    std::cout << "seeds: baseline " << result.baseline_seed << ", candidate "
              << result.candidate_seed;
    if (result.seeds_differ())
      std::cout << " — seeds differ; deltas may reflect placement/scheduler "
                   "noise, rerun the candidate with MB_SEED="
                << result.baseline_seed << " before trusting the verdict";
    std::cout << "\n";
  }

  // When both reports embed an observability snapshot (profiled runs),
  // name the phases whose counters moved most — attribution, not gating.
  const auto movers = mb::core::attribute_metrics(baseline, candidate);
  if (!movers.empty()) {
    constexpr std::size_t kMaxMovers = 10;
    std::cout << "\nphase attribution (informational, top metric movers):\n";
    mb::support::Table attribution(
        {"Metric", "Baseline", "Candidate", "Delta %"});
    for (std::size_t i = 0; i < movers.size() && i < kMaxMovers; ++i) {
      const auto& m = movers[i];
      // One-sided series render the absent side as "-" and say which way
      // the series went instead of a meaningless percentage.
      using Presence = mb::core::MetricDelta::Presence;
      if (m.presence == Presence::kBaselineOnly) {
        attribution.add_row(
            {m.key, mb::support::fmt_eng(m.baseline), "-", "removed"});
      } else if (m.presence == Presence::kCandidateOnly) {
        attribution.add_row(
            {m.key, "-", mb::support::fmt_eng(m.candidate), "added"});
      } else {
        attribution.add_row({m.key, mb::support::fmt_eng(m.baseline),
                             mb::support::fmt_eng(m.candidate),
                             fmt_fixed(100.0 * m.rel_delta, 2)});
      }
    }
    std::cout << attribution;
    if (movers.size() > kMaxMovers)
      std::cout << "… " << movers.size() - kMaxMovers
                << " more metric(s) moved\n";
  }

  // Name the suite on every exit-3 path: the gate log must say *which*
  // suite regressed or blew its budget without the reader re-deriving it
  // from file paths.
  const std::string suite =
      candidate.suite.empty() ? "(unnamed)" : candidate.suite;
  bool budget_exceeded = false;
  if (budget_s > 0.0) {
    budget_exceeded = wall_clock_s > budget_s;
    std::cout << "wall-clock: " << fmt_fixed(wall_clock_s, 2)
              << " s against a " << fmt_fixed(budget_s, 2)
              << " s budget for suite '" << suite << "' — "
              << (budget_exceeded ? "EXCEEDED" : "within budget") << "\n";
  }

  if (result.has_regressions() || budget_exceeded) {
    std::cout << "verdict: REGRESSED (suite '" << suite << "'";
    if (result.has_regressions())
      std::cout << ", " << result.regressions << " metric regression(s)";
    if (budget_exceeded)
      std::cout << ", wall-clock budget exceeded by "
                << fmt_fixed(wall_clock_s - budget_s, 2) << " s";
    std::cout << ")\n";
    return kExitFindings;
  }
  std::cout << "verdict: OK\n";
  return kExitOk;
}

int cmd_version() {
  std::cout << "mbctl " << mb::support::version() << '\n';
  return 0;
}

// --------------------------------------------------------------------------
// lint / verify-mpi: the static verification layer (src/verify).

void write_diagnostics_json(const mb::verify::Report& report,
                            const std::string& source,
                            const std::string& path, std::uint64_t seed) {
  std::ofstream out(path);
  if (!out) throw mb::support::Error("cannot open " + path + " for writing");
  out << mb::verify::diagnostics_to_json(report, source, seed);
  if (!out) throw mb::support::Error("write to " + path + " failed");
  std::cerr << "wrote " << path << " (" << report.findings().size()
            << " finding(s))\n";
}

int cmd_lint(const std::string& target, Options& opts) {
  mb::verify::Report report;
  std::string source;
  if (target == "tibidabo-tree" || target == "upgraded-tree") {
    const auto nodes =
        static_cast<std::uint32_t>(opts.get_u64("nodes", 32));
    const auto params = target == "tibidabo-tree"
                            ? mb::net::tibidabo_tree(nodes)
                            : mb::net::upgraded_tree(nodes);
    report = mb::verify::lint_tree(params, target);
    source = "tree:" + target;
  } else {
    const auto platform = resolve_platform(target);
    report = mb::verify::lint_platform(platform);
    source = "platform:" + platform.name;
  }
  std::cout << "lint " << source << ":\n"
            << mb::verify::render_diagnostics(report);
  if (opts.has("json"))
    write_diagnostics_json(report, source, opts.get_str("json", ""),
                           effective_seed(opts, 0));
  return report.has_errors() ? kExitFindings : kExitOk;
}

/// Prints `report` and exits 3 when it carries error findings — the shared
/// gate for configuration rules (CFG001 replaces the ad-hoc "--ranks must
/// be positive and even" checks scattered through the scenario commands).
void enforce_clean(const mb::verify::Report& report) {
  if (!report.has_errors()) return;
  std::cerr << mb::verify::render_diagnostics(report);
  // Configuration lint runs before the simulation spins up any threads.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::exit(kExitFindings);
}

/// The seeded defect fixture behind `verify-mpi demo-deadlock`: a classic
/// recv/send tag mismatch. Both ranks post their receive first, each with
/// a tag the other never sends — a two-rank wait-for cycle the verifier
/// must name end to end (rule, ranks, op indices, cycle chain).
mb::mpi::Program demo_deadlock_program() {
  mb::mpi::Program program(2);
  program.append(0, mb::mpi::Op::recv(1, 2));
  program.append(0, mb::mpi::Op::send(1, 1024, 1));
  program.append(1, mb::mpi::Op::recv(0, 1));
  program.append(1, mb::mpi::Op::send(0, 1024, 3));
  return program;
}

/// Builds the app program the static passes (verify-mpi, analyze-static)
/// target. The per-app knobs mirror chaos/fig4 so a predicted scenario is
/// the same one the DES commands run.
mb::mpi::Program build_static_target(const std::string& app, Options& opts,
                                     std::uint64_t seed,
                                     const std::string& command) {
  if (app == "fig4" || app == "bigdft") {
    mb::apps::BigDftParams params;
    params.ranks = static_cast<std::uint32_t>(
        opts.get_u64("ranks", app == "fig4" ? 36 : 8));
    params.iterations = static_cast<std::uint32_t>(
        opts.get_u64("iterations", params.iterations));
    params.compute_s_per_iter =
        opts.get_f64("compute-s", params.compute_s_per_iter);
    params.transpose_bytes =
        opts.get_u64("transpose-mb", params.transpose_bytes >> 20) << 20;
    params.seed = seed;
    enforce_clean(mb::verify::lint_rank_count(params.ranks, 2, "--ranks"));
    return mb::apps::bigdft_program(params);
  }
  if (app == "hpl") {
    mb::apps::HplParams params;
    params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 16));
    params.n = static_cast<std::uint32_t>(opts.get_u64("n", params.n));
    params.block =
        static_cast<std::uint32_t>(opts.get_u64("block", params.block));
    enforce_clean(mb::verify::lint_rank_count(params.ranks, 2, "--ranks"));
    return mb::apps::hpl_program(params);
  }
  if (app == "specfem") {
    mb::apps::SpecfemParams params;
    params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 8));
    params.steps =
        static_cast<std::uint32_t>(opts.get_u64("steps", params.steps));
    params.compute_s_per_step =
        opts.get_f64("compute-s", params.compute_s_per_step);
    params.halo_bytes = opts.get_u64("halo-kb", params.halo_bytes >> 10)
                        << 10;
    params.seed = seed;
    enforce_clean(mb::verify::lint_rank_count(params.ranks, 2, "--ranks"));
    return mb::apps::specfem_program(params);
  }
  usage("unknown " + command + " app '" + app + "'");
}

/// The platform half of an analyze-static / verify-mpi --cost question:
/// --tree picks the switch generation, --mtu the frame granularity. The
/// node count follows the program (2 ranks per node, as every cluster
/// command packs them).
mb::verify::CostDescriptor descriptor_for(const mb::mpi::Program& program,
                                          Options& opts) {
  mb::verify::CostDescriptor d;
  const std::uint32_t nodes = program.ranks() / d.cores_per_node;
  const std::string tree = opts.get_str("tree", "tibidabo");
  if (tree == "tibidabo") {
    d.tree = mb::net::tibidabo_tree(nodes);
  } else if (tree == "upgraded") {
    d.tree = mb::net::upgraded_tree(nodes);
  } else {
    usage("--tree expects tibidabo|upgraded, got '" + tree + "'");
  }
  d.mtu_bytes =
      static_cast<std::uint32_t>(opts.get_u64("mtu", d.mtu_bytes));
  if (d.mtu_bytes == 0) usage("--mtu must be positive");
  return d;
}

/// Loads the optional --faults plan (PERF004 input). Returns false when
/// the flag is absent.
bool load_fault_plan(Options& opts, mb::fault::FaultPlan& plan) {
  if (!opts.has("faults")) return false;
  const std::string path = opts.get_str("faults", "");
  std::ifstream in(path);
  if (!in) usage("cannot open fault plan " + path);
  std::ostringstream text;
  text << in.rdbuf();
  plan = mb::fault::plan_from_json(text.str());
  return true;
}

int cmd_verify_mpi(const std::string& app, Options& opts) {
  const std::uint64_t seed = effective_seed(opts, 1);
  mb::mpi::Program program =
      app == "demo-deadlock"
          ? demo_deadlock_program()
          : build_static_target(app, opts, seed,
                                "verify-mpi (fig4|bigdft|hpl|specfem|"
                                "demo-deadlock)");

  auto report = mb::verify::verify_program(program);
  std::cout << "verify-mpi " << app << " (" << program.ranks()
            << " ranks):\n"
            << mb::verify::render_diagnostics(report);

  // --cost: run the pass-3 interpreter on top and fold the PERF findings
  // into the same report/exit/JSON. Bounds of a broken schedule are
  // meaningless, so errors skip the cost pass (and already exit 3).
  if (opts.has("cost")) {
    if (report.has_errors()) {
      std::cout << "cost: skipped (fix the errors above first; bounds of "
                   "a broken schedule are meaningless)\n";
    } else {
      const auto descriptor = descriptor_for(program, opts);
      const auto cost = mb::verify::analyze_cost(program, descriptor);
      mb::fault::FaultPlan plan;
      const bool with_plan = load_fault_plan(opts, plan);
      const auto perf = mb::verify::perf_pass(
          program, descriptor, cost, with_plan ? &plan : nullptr);
      std::cout << '\n'
                << mb::verify::render_cost(cost)
                << "perf rules:\n"
                << mb::verify::render_diagnostics(perf);
      report.merge(perf);
    }
  }

  if (opts.has("json"))
    write_diagnostics_json(report, app, opts.get_str("json", ""), seed);
  return report.has_errors() ? kExitFindings : kExitOk;
}

// --------------------------------------------------------------------------
// analyze-static: the pass-3 abstract cost interpreter (src/verify).

int cmd_analyze_static(const std::string& app, Options& opts) {
  const std::uint64_t seed = effective_seed(opts, 1);
  mb::mpi::Program program = build_static_target(
      app, opts, seed, "analyze-static (fig4|bigdft|hpl|specfem)");

  // Bounds are only defined for programs that verify clean: a deadlocked
  // or unmatched schedule never finishes, so there is nothing to bound.
  const auto verdict = mb::verify::verify_program(program);
  if (verdict.has_errors()) {
    std::cerr << mb::verify::render_diagnostics(verdict)
              << "analyze-static: the program fails verify-mpi; run "
                 "`mbctl verify-mpi` and fix the errors first\n";
    return kExitFindings;
  }

  const auto descriptor = descriptor_for(program, opts);
  mb::fault::FaultPlan plan;
  const bool with_plan = load_fault_plan(opts, plan);

  mb::verify::CostReport cost;
  mb::verify::Report perf;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "analyze-static/run");
    cost = mb::verify::analyze_cost(program, descriptor);
    perf = mb::verify::perf_pass(program, descriptor, cost,
                                 with_plan ? &plan : nullptr);
  }

  std::cout << "=== analyze-static: " << app << " on "
            << opts.get_str("tree", "tibidabo") << " tree ===\n"
            << mb::verify::render_cost(cost) << "perf rules:\n"
            << mb::verify::render_diagnostics(perf);

  if (opts.has("json")) {
    const std::string path = opts.get_str("json", "");
    std::ofstream out(path);
    if (!out)
      throw mb::support::Error("cannot open " + path + " for writing");
    out << mb::verify::static_analysis_to_json(cost, app, seed, perf);
    if (!out) throw mb::support::Error("write to " + path + " failed");
    std::cerr << "wrote " << path << " (" << perf.findings().size()
              << " finding(s))\n";
  }
  return perf.has_errors() ? kExitFindings : kExitOk;
}

// --------------------------------------------------------------------------
// chaos: fault-injection scenarios (src/fault) — run an application under
// a declarative FaultPlan with failure detection and checkpoint/restart.

int cmd_chaos(const std::string& app, Options& opts) {
  if (!opts.has("faults")) usage("chaos needs --faults plan.json");
  const std::string plan_path = opts.get_str("faults", "");
  std::ifstream in(plan_path);
  if (!in) usage("cannot open fault plan " + plan_path);
  std::ostringstream text;
  text << in.rdbuf();
  mb::fault::FaultPlan plan = mb::fault::plan_from_json(text.str());
  plan.seed = effective_seed(opts, plan.seed);

  // Checkpoint-model overrides; setting an interval or size implies `on`.
  if (opts.has("checkpoint")) {
    const std::string v = opts.get_str("checkpoint", "on");
    if (v != "on" && v != "off") usage("--checkpoint expects on|off");
    plan.checkpoint.enabled = v == "on";
  }
  if (opts.has("checkpoint-interval")) {
    plan.checkpoint.enabled = true;
    plan.checkpoint.interval_s = opts.get_f64("checkpoint-interval", 0.0);
  }
  if (opts.has("checkpoint-mb")) {
    plan.checkpoint.enabled = true;
    plan.checkpoint.state_bytes_per_rank =
        static_cast<double>(opts.get_u64("checkpoint-mb", 64) << 20);
  }

  mb::mpi::Program program(1);
  std::uint32_t ranks = 0;
  if (app == "bigdft") {
    mb::apps::BigDftParams params;
    params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 8));
    params.iterations =
        static_cast<std::uint32_t>(opts.get_u64("iterations", 6));
    params.compute_s_per_iter = opts.get_f64("compute-s", 1.0);
    params.transpose_bytes = opts.get_u64("transpose-mb", 8) << 20;
    params.seed = plan.seed;
    ranks = params.ranks;
    enforce_clean(mb::verify::lint_rank_count(ranks, 2, "--ranks"));
    program = mb::apps::bigdft_program(params);
  } else if (app == "hpl") {
    mb::apps::HplParams params;
    params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 16));
    params.n = static_cast<std::uint32_t>(opts.get_u64("n", 4096));
    params.block = static_cast<std::uint32_t>(opts.get_u64("block", 64));
    ranks = params.ranks;
    enforce_clean(mb::verify::lint_rank_count(ranks, 2, "--ranks"));
    program = mb::apps::hpl_program(params);
  } else if (app == "specfem") {
    mb::apps::SpecfemParams params;
    params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 8));
    params.steps = static_cast<std::uint32_t>(opts.get_u64("steps", 20));
    params.compute_s_per_step = opts.get_f64("compute-s", 6.0);
    ranks = params.ranks;
    enforce_clean(mb::verify::lint_rank_count(ranks, 2, "--ranks"));
    program = mb::apps::specfem_program(params);
  } else {
    usage("unknown chaos app '" + app + "' (bigdft|hpl|specfem)");
  }

  mb::fault::ChaosScenario scenario;
  scenario.cluster = mb::apps::tibidabo_cluster(ranks / 2);
  scenario.cluster.mpi.recv_timeout_s = opts.get_f64("recv-timeout", 2.0);
  scenario.cluster.mpi.max_send_retries =
      static_cast<std::uint32_t>(opts.get_u64("send-retries", 3));
  scenario.max_restarts =
      static_cast<std::uint32_t>(opts.get_u64("max-restarts", 8));
  apply_capture_options(opts, scenario.cluster, plan.seed);
  enforce_clean(mb::verify::lint_fault_plan(plan, scenario.cluster.nodes));
  scenario.plan = plan;

  mb::fault::ChaosResult result;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "chaos/run");
    result = mb::fault::run_chaos(scenario, program);
  }

  const auto& rec = result.recovery;
  std::cout << "=== chaos: " << app << " under " << plan_path << " ===\n"
            << "ranks:            " << ranks << " on "
            << scenario.cluster.nodes << " nodes\n"
            << "outcome:          "
            << (result.completed
                    ? (result.recovered ? "RECOVERED" : "COMPLETED")
                    : "UNRECOVERED")
            << " after " << result.attempts << " attempt(s)\n"
            << "app makespan:     " << fmt_fixed(result.app_makespan_s, 3)
            << " s\n"
            << "time-to-solution: "
            << fmt_fixed(result.time_to_solution_s, 3) << " s\n"
            << "recovery cost:    " << fmt_fixed(rec.total(), 3)
            << " s (checkpoints " << fmt_fixed(rec.checkpoint_write_s, 3)
            << ", lost work " << fmt_fixed(rec.lost_work_s, 3)
            << ", detection " << fmt_fixed(rec.detection_s, 3)
            << ", restart " << fmt_fixed(rec.restart_s, 3) << ")\n"
            << "network:          " << result.network_drops << " drops, "
            << result.retransmits << " retransmits, "
            << result.injected_losses << " injected losses\n";

  result.trace.set_provenance(std::string(mb::support::version()),
                              plan.seed);
  write_timeseries_artifact(opts, result.timeseries, plan.seed);
  if (opts.has("trace-out")) {
    const std::string path = opts.get_str("trace-out", "");
    std::ofstream out(path);
    if (!out)
      throw mb::support::Error("cannot open " + path + " for writing");
    result.trace.write_paraver(out);
    if (!out) throw mb::support::Error("write to " + path + " failed");
    std::cerr << "wrote " << path << " (" << result.trace.size()
              << " trace records, fault marks included)\n";
  }

  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "chaos";
    report.tool = "mbctl";
    report.seed = plan.seed;
    using D = mb::core::Direction;
    const std::string base = "chaos/" + app;
    add_record(report, base + "/time_to_solution", "tibidabo", "seconds",
               "s", D::kMinimize, {result.time_to_solution_s});
    add_record(report, base + "/app_makespan", "tibidabo", "seconds", "s",
               D::kMinimize, {result.app_makespan_s});
    add_record(report, base + "/restarts", "tibidabo", "count", "restarts",
               D::kMinimize, {static_cast<double>(result.attempts - 1)});
    add_record(report, base + "/recovery_overhead", "tibidabo", "seconds",
               "s", D::kMinimize, {rec.total()});
    add_record(report, base + "/network_drops", "tibidabo", "count",
               "frames", D::kMinimize,
               {static_cast<double>(result.network_drops)});
    add_record(report, base + "/retransmits", "tibidabo", "count", "frames",
               D::kMinimize, {static_cast<double>(result.retransmits)});
    add_record(report, base + "/injected_losses", "tibidabo", "count",
               "frames", D::kMinimize,
               {static_cast<double>(result.injected_losses)});
    // An unrecovered run embeds the structured failure report so CI can
    // act on it (dead ranks, blocked ops, detection time) instead of
    // scraping the stderr rendering.
    if (!result.completed) {
      report.failure.present = true;
      report.failure.dead_ranks = result.failure.dead_ranks;
      for (const mb::mpi::BlockedOp& b : result.failure.blocked) {
        mb::core::RunFailure::Blocked blocked;
        blocked.rank = b.rank;
        blocked.peer = b.peer;
        blocked.tag = b.tag;
        blocked.op_index = b.op_index;
        blocked.since_s = b.since_s;
        blocked.timed_out = b.timed_out;
        report.failure.blocked.push_back(blocked);
      }
      report.failure.detected_s = result.failure.detected_s;
    }
    write_report(report, opts.get_str("json", ""));
  }

  if (!result.completed) {
    std::cerr << result.failure.to_string();
    return kExitFindings;
  }
  return kExitOk;
}

// --------------------------------------------------------------------------
// advise: recommendation engine + guarded apply (src/advise). The bigdft
// mode measures the same scenario `chaos bigdft` runs (same defaults), so
// a chaos investigation and the advice about it describe the same run.

/// Everything that shapes a bigdft advise arm besides its rep seed. The
/// campaign cache key folds a hash of this in, so editing the fault plan
/// or any knob invalidates cached arm samples instead of replaying stale
/// ones.
struct BigDftArmConfig {
  mb::apps::BigDftParams params;
  mb::fault::FaultPlan plan;
  std::uint32_t nodes = 0;
  double recv_timeout_s = 2.0;
  std::uint32_t send_retries = 3;
  std::uint32_t max_restarts = 8;
  // Candidate-side deviations from the measured configuration.
  std::uint32_t extra_nodes = 0;        ///< spare nodes appended
  std::vector<std::uint32_t> rank_map;  ///< empty = node-major default
  std::string rewrite_allreduce_label;  ///< non-empty = switch algorithm
  double checkpoint_interval_s = 0.0;   ///< > 0 = override the interval
};

/// One time-to-solution sample of a bigdft chaos configuration. The rep
/// seed drives the application's compute skew; the fault-plan seed stays
/// fixed — the injected environment is the hypothesis under test, not a
/// noise source.
double measure_bigdft_arm(const BigDftArmConfig& cfg,
                          std::uint64_t rep_seed) {
  mb::apps::BigDftParams params = cfg.params;
  params.seed = rep_seed;
  mb::mpi::Program program = mb::apps::bigdft_program(params);
  if (!cfg.rewrite_allreduce_label.empty())
    program =
        mb::advise::rewrite_allreduce(program, cfg.rewrite_allreduce_label);
  mb::fault::ChaosScenario scenario;
  scenario.cluster = mb::apps::tibidabo_cluster(cfg.nodes + cfg.extra_nodes);
  scenario.cluster.rank_map = cfg.rank_map;
  scenario.cluster.mpi.recv_timeout_s = cfg.recv_timeout_s;
  scenario.cluster.mpi.max_send_retries = cfg.send_retries;
  scenario.max_restarts = cfg.max_restarts;
  scenario.plan = cfg.plan;
  if (cfg.checkpoint_interval_s > 0.0) {
    scenario.plan.checkpoint.enabled = true;
    scenario.plan.checkpoint.interval_s = cfg.checkpoint_interval_s;
  }
  const mb::fault::ChaosResult result =
      mb::fault::run_chaos(scenario, program);
  mb::support::check(result.completed, "advise --apply",
                     "an apply arm did not complete — the candidate "
                     "configuration broke recovery");
  return result.time_to_solution_s;
}

/// Shared tail of both advise modes: render to stdout, publish the
/// advise.* counters, optionally write the mb-advice document.
void write_advice_outputs(const mb::advise::AdviceReport& report,
                          Options& opts) {
  std::cout << mb::advise::render_advice(report);
  mb::advise::publish_advice_metrics(report);
  if (opts.has("json")) {
    const std::string path = opts.get_str("json", "");
    std::ofstream out(path);
    if (!out)
      throw mb::support::Error("cannot open " + path + " for writing");
    out << mb::advise::to_json(report) << '\n';
    if (!out) throw mb::support::Error("write to " + path + " failed");
    std::cerr << "wrote " << path << " (" << report.recommendations.size()
              << " recommendation(s))\n";
  }
}

/// Guarded apply for the bigdft scenario: per appliable recommendation,
/// re-measures baseline vs candidate arms through the campaign cache and
/// records the accepted/rejected verdict via the compare noise gate.
void apply_bigdft(mb::advise::AdviceReport& report,
                  const BigDftArmConfig& base, Options& opts) {
  mb::advise::ApplyOptions apply;
  apply.campaign = campaign_options(opts);
  apply.compare.threshold_sigma =
      opts.get_f64("threshold-sigma", apply.compare.threshold_sigma);
  apply.compare.min_rel_delta =
      opts.get_f64("min-rel", apply.compare.min_rel_delta);
  apply.reps = static_cast<std::uint32_t>(opts.get_u64("reps", 3));
  apply.seed = base.plan.seed;
  apply.metric = "seconds";
  apply.unit = "s";
  // Chaos arms publish to the single-threaded obs registry, so the
  // campaign must not shard them: --jobs N still resolves cache hits but
  // misses run serially, keeping output byte-identical for any N.
  apply.serial_only = true;
  mb::support::Hasher hasher;
  hasher.str(mb::fault::to_json(base.plan))
      .u64(base.params.ranks)
      .u64(base.params.iterations)
      .f64(base.params.compute_s_per_iter)
      .u64(base.params.transpose_bytes)
      .f64(base.recv_timeout_s)
      .u64(base.send_retries)
      .u64(base.max_restarts);
  apply.config_hash = hasher.digest();

  const mb::advise::Arm baseline{"baseline",
                                 [&base](std::uint64_t rep_seed) {
                                   return measure_bigdft_arm(base, rep_seed);
                                 }};
  for (mb::advise::Recommendation& rec : report.recommendations) {
    if (!rec.appliable) continue;
    BigDftArmConfig cand = base;
    if (rec.kind == mb::advise::Kind::kRemapRanks) {
      // Vacate the degraded node onto a spare appended to the cluster;
      // every other rank keeps its node-major home.
      const auto degraded = static_cast<std::uint32_t>(rec.proposed_value);
      for (std::uint32_t r = 0; r < base.params.ranks; ++r) {
        const std::uint32_t home = r / 2;
        cand.rank_map.push_back(home == degraded ? base.nodes : home);
      }
      cand.extra_nodes = 1;
    } else if (rec.kind == mb::advise::Kind::kSwitchCollective) {
      cand.rewrite_allreduce_label = rec.target;
    } else if (rec.kind == mb::advise::Kind::kCheckpointInterval) {
      cand.checkpoint_interval_s = rec.proposed_value;
    } else {
      continue;  // no mechanical arm for this kind
    }
    const mb::advise::Arm candidate{
        rec.id, [&cand](std::uint64_t rep_seed) {
          return measure_bigdft_arm(cand, rep_seed);
        }};
    mb::advise::verify_recommendation(rec, report.scenario, baseline,
                                      candidate, apply);
  }
  report.applied = true;
}

int cmd_advise_bigdft(Options& opts) {
  mb::fault::FaultPlan plan;
  load_fault_plan(opts, plan);
  plan.seed = effective_seed(opts, plan.seed);

  BigDftArmConfig cfg;
  cfg.params.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 8));
  cfg.params.iterations =
      static_cast<std::uint32_t>(opts.get_u64("iterations", 6));
  cfg.params.compute_s_per_iter = opts.get_f64("compute-s", 1.0);
  cfg.params.transpose_bytes = opts.get_u64("transpose-mb", 8) << 20;
  cfg.params.seed = plan.seed;
  enforce_clean(mb::verify::lint_rank_count(cfg.params.ranks, 2, "--ranks"));
  cfg.plan = plan;
  cfg.nodes = cfg.params.ranks / 2;
  cfg.recv_timeout_s = opts.get_f64("recv-timeout", 2.0);
  cfg.send_retries =
      static_cast<std::uint32_t>(opts.get_u64("send-retries", 3));
  cfg.max_restarts =
      static_cast<std::uint32_t>(opts.get_u64("max-restarts", 8));

  mb::mpi::Program program = mb::apps::bigdft_program(cfg.params);

  // Measure once: the run every piece of evidence points back into.
  mb::fault::ChaosScenario scenario;
  scenario.cluster = mb::apps::tibidabo_cluster(cfg.nodes);
  scenario.cluster.mpi.recv_timeout_s = cfg.recv_timeout_s;
  scenario.cluster.mpi.max_send_retries = cfg.send_retries;
  scenario.max_restarts = cfg.max_restarts;
  enforce_clean(mb::verify::lint_fault_plan(plan, scenario.cluster.nodes));
  scenario.plan = plan;
  mb::fault::ChaosResult measured;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "advise/measure");
    measured = mb::fault::run_chaos(scenario, program);
  }
  if (!measured.completed) {
    std::cerr << "advise: the measured scenario did not complete — fix "
                 "recovery before tuning performance\n"
              << measured.failure.to_string();
    return kExitFindings;
  }
  measured.trace.set_provenance(std::string(mb::support::version()),
                                plan.seed);
  const mb::obs::Analysis analysis =
      mb::obs::analyze_timeline(measured.trace, nullptr, {});

  // Independent static view of the same program: contention-free bounds
  // plus the PERF rule pack (the advisor cross-references both).
  const mb::verify::CostDescriptor descriptor =
      descriptor_for(program, opts);
  const mb::verify::CostReport cost =
      mb::verify::analyze_cost(program, descriptor);
  const mb::verify::Report perf =
      mb::verify::perf_pass(program, descriptor, cost, &plan, {});

  mb::advise::ScenarioFacts facts;
  facts.analysis = &analysis;
  facts.cost = &cost;
  facts.perf = &perf;
  facts.plan = &plan;
  facts.ranks = cfg.params.ranks;
  facts.nodes = cfg.nodes;
  facts.cores_per_node = 2;
  facts.measured_makespan_s = measured.time_to_solution_s;
  facts.sim_jobs = static_cast<std::uint32_t>(opts.get_u64("sim-jobs", 0));

  mb::advise::AdviceReport report;
  report.scenario = "chaos:bigdft";
  report.seed = plan.seed;
  report.recommendations = mb::advise::advise_scenario(facts);
  mb::advise::rank_recommendations(report);

  if (opts.has("apply")) apply_bigdft(report, cfg, opts);

  write_advice_outputs(report, opts);
  return kExitOk;
}

int cmd_advise_magicfilter(Options& opts) {
  const auto platform =
      resolve_platform(opts.get_str("platform", "tegra2"));
  const std::uint64_t seed = effective_seed(opts, 1);
  const auto current = static_cast<std::uint32_t>(opts.get_u64("unroll", 1));
  if (current < 1 || current > 12) usage("--unroll must be in 1..12");
  const auto co = campaign_options(opts);

  // Sweep every unroll variant under the exact cache keys tune-magicfilter
  // uses: it is the same measurement, so a prior tune run warms this sweep
  // and vice versa.
  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);
  std::vector<mb::core::CampaignTask> tasks;
  for (std::size_t i = 0; i < space.size(); ++i) {
    mb::core::CampaignTask task;
    task.key = {std::string(mb::support::version()), "tune-magicfilter",
                platform.name, space.at(i).to_string() + " n=20 dims=1",
                seed, 0};
    const auto unroll =
        static_cast<std::uint32_t>(space.at(i).get("unroll"));
    task.run = [&platform, unroll, key = task.key]() {
      mb::sim::Machine machine(
          platform, mb::sim::PagePolicy::kConsecutive,
          mb::support::Rng(mb::support::derive_seed(key.seed, key.hash())));
      mb::kernels::MagicfilterParams params;
      params.n = 20;
      params.dims = 1;
      params.unroll = unroll;
      return std::vector<double>{
          mb::kernels::magicfilter_run(machine, params).cycles_per_output};
    };
    tasks.push_back(std::move(task));
  }
  const auto campaign = run_campaign_reported(tasks, co);
  std::vector<mb::advise::KernelSweepPoint> sweep;
  for (std::size_t i = 0; i < space.size(); ++i)
    sweep.push_back({static_cast<std::uint32_t>(space.at(i).get("unroll")),
                     campaign.samples[i].at(0)});

  // Place the current variant on the hierarchical roofline — the
  // recommendation's evidence for what bounds the kernel and how much
  // vector headroom is left.
  mb::sim::Machine machine(
      platform, mb::sim::PagePolicy::kConsecutive,
      mb::support::Rng(mb::support::derive_seed(seed, 0x616476)));
  mb::kernels::MagicfilterParams params;
  params.n = 20;
  params.dims = 1;
  params.unroll = current;
  const auto run = mb::kernels::magicfilter_run(machine, params);
  const auto hier = mb::sim::hierarchical_dp_roofline(platform);
  const std::uint64_t working_set =
      2ull * params.n * params.n * params.n * sizeof(double);
  const auto placement = mb::sim::place_on_hierarchy(
      hier, "magicfilter", run.sim, 1, working_set, false);

  mb::advise::AdviceReport report;
  report.scenario = "magicfilter:" + platform.name;
  report.seed = seed;
  report.recommendations = mb::advise::advise_kernel(
      platform, "magicfilter", sweep, current, placement);
  mb::advise::rank_recommendations(report);

  if (opts.has("apply")) {
    mb::advise::ApplyOptions apply;
    apply.campaign = co;
    apply.compare.threshold_sigma =
        opts.get_f64("threshold-sigma", apply.compare.threshold_sigma);
    apply.compare.min_rel_delta =
        opts.get_f64("min-rel", apply.compare.min_rel_delta);
    apply.reps = static_cast<std::uint32_t>(opts.get_u64("reps", 3));
    apply.seed = seed;
    apply.metric = "cycles_per_output";
    apply.unit = "cycles";
    mb::support::Hasher hasher;
    hasher.str(platform.name).u64(params.n).u64(params.dims).u64(current);
    apply.config_hash = hasher.digest();
    // Pure-machine arms: no shared state, so these may shard across
    // --jobs workers (serial_only stays false).
    auto arm = [&platform](std::string name, std::uint32_t unroll) {
      return mb::advise::Arm{
          std::move(name), [&platform, unroll](std::uint64_t rep_seed) {
            mb::sim::Machine m(platform, mb::sim::PagePolicy::kConsecutive,
                               mb::support::Rng(rep_seed));
            mb::kernels::MagicfilterParams p;
            p.n = 20;
            p.dims = 1;
            p.unroll = unroll;
            return mb::kernels::magicfilter_run(m, p).cycles_per_output;
          }};
    };
    for (mb::advise::Recommendation& rec : report.recommendations) {
      if (!rec.appliable) continue;
      mb::advise::verify_recommendation(
          rec, report.scenario, arm("baseline", current),
          arm(rec.id, static_cast<std::uint32_t>(rec.proposed_value)),
          apply);
    }
    report.applied = true;
  }

  write_advice_outputs(report, opts);
  return kExitOk;
}

int cmd_advise(const std::string& target, Options& opts) {
  if (target == "bigdft") return cmd_advise_bigdft(opts);
  if (target == "magicfilter") return cmd_advise_magicfilter(opts);
  usage("unknown advise target '" + target + "' (bigdft|magicfilter)");
}

// --------------------------------------------------------------------------
// fuzz / replay: differential fuzzing and mb-repro record/replay.

struct SeedRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// "--seeds A..B" (half-open) or "--seeds N" (the single seed N).
SeedRange parse_seed_range(const std::string& spec) {
  SeedRange range;
  const auto dots = spec.find("..");
  try {
    std::size_t used = 0;
    if (dots == std::string::npos) {
      range.lo = std::stoull(spec, &used);
      if (used != spec.size()) throw std::invalid_argument(spec);
      range.hi = range.lo + 1;
    } else {
      const std::string lo = spec.substr(0, dots);
      const std::string hi = spec.substr(dots + 2);
      range.lo = std::stoull(lo, &used);
      if (used != lo.size()) throw std::invalid_argument(spec);
      range.hi = std::stoull(hi, &used);
      if (used != hi.size()) throw std::invalid_argument(spec);
    }
  } catch (const std::exception&) {
    usage("--seeds expects N or A..B (half-open), got '" + spec + "'");
  }
  if (range.lo >= range.hi) usage("--seeds range is empty: '" + spec + "'");
  if (range.hi - range.lo > 1000000)
    usage("--seeds range covers more than 1e6 seeds");
  return range;
}

void write_bundle_file(const mb::gen::ReproBundle& bundle,
                       const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw mb::support::Error("cannot open " + path + " for writing");
  out << mb::gen::to_json(bundle) << '\n';
  if (!out) throw mb::support::Error("write to " + path + " failed");
  std::cerr << "wrote " << path << " (mb-repro bundle, oracle "
            << bundle.oracle << ")\n";
}

mb::gen::ReproBundle load_bundle(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open bundle " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return mb::gen::bundle_from_json(text.str());
}

int cmd_fuzz(Options& opts) {
  const SeedRange range = parse_seed_range(opts.get_str("seeds", "0..100"));
  const std::uint64_t base_seed = effective_seed(opts, 2013);

  mb::gen::SweepSpec spec;
  if (opts.has("pattern")) {
    try {
      spec.base.pattern =
          mb::gen::parse_pattern(opts.get_str("pattern", "mixed"));
    } catch (const mb::support::Error& e) {
      usage(e.what());
    }
    spec.pin_pattern = true;
  }
  if (opts.has("ranks")) {
    spec.base.ranks = static_cast<std::uint32_t>(opts.get_u64("ranks", 8));
    enforce_clean(mb::verify::lint_rank_count(spec.base.ranks, 2, "--ranks"));
    spec.pin_ranks = true;
  }
  if (opts.has("rounds")) {
    spec.base.rounds = static_cast<std::uint32_t>(opts.get_u64("rounds", 3));
    spec.pin_rounds = true;
  }
  spec.base.min_bytes = opts.get_u64("min-bytes", spec.base.min_bytes);
  spec.base.max_bytes = opts.get_u64("max-bytes", spec.base.max_bytes);
  spec.base.defect_prob = opts.get_f64("defect-rate", 0.2);
  if (spec.base.defect_prob < 0.0 || spec.base.defect_prob > 1.0)
    usage("--defect-rate must be in [0, 1]");

  mb::gen::DiffConfig config;
  config.tree = opts.get_str("tree", "tibidabo");
  if (config.tree != "tibidabo" && config.tree != "upgraded")
    usage("--tree expects tibidabo|upgraded");
  config.sim_jobs = static_cast<std::uint32_t>(opts.get_u64("sim-jobs", 2));
  config.pretend_clean = opts.has("pretend-clean");
  const std::uint64_t chaos_every = opts.get_u64("chaos-every", 25);

  const auto jobs = static_cast<std::uint32_t>(opts.get_u64("jobs", 1));
  if (jobs == 0) usage("--jobs must be at least 1");

  const std::size_t n = range.hi - range.lo;
  if (opts.has("bundle-out") && n != 1)
    usage("--bundle-out records a single seed; use --seeds N");

  // Derive every (seed, params) pair, then generate the programs across
  // --jobs workers — generation is pure, so the output is byte-identical
  // for any worker count. The oracles themselves run serially: every arm
  // executes the DES, which publishes to the single-threaded metrics
  // registry.
  std::vector<std::uint64_t> gen_seeds(n);
  std::vector<mb::gen::GenParams> params(n);
  for (std::size_t i = 0; i < n; ++i) {
    gen_seeds[i] = mb::support::derive_seed(base_seed, range.lo + i);
    params[i] = mb::gen::sweep_params(gen_seeds[i], spec);
  }
  std::vector<mb::gen::GeneratedProgram> programs(n);
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "fuzz/generate");
    mb::support::Executor executor(jobs);
    executor.run(n, [&](std::size_t i) {
      programs[i] = mb::gen::generate(gen_seeds[i], params[i]);
    });
  }

  const std::string bundle_dir = opts.get_str("bundle-dir", "fuzz-bundles");
  std::size_t clean = 0;
  std::size_t defective = 0;
  std::size_t chaos_arms = 0;
  std::size_t discrepancies = 0;
  std::cout << "=== fuzz: seeds [" << range.lo << ", " << range.hi
            << ") base seed " << base_seed << " on " << config.tree
            << " ===\n";
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed_index = range.lo + i;
    mb::gen::DiffConfig seed_config = config;
    seed_config.with_chaos =
        chaos_every > 0 && seed_index % chaos_every == 0;

    mb::gen::SeedOutcome outcome;
    {
      mb::obs::ScopedSpan span(mb::obs::profiler(), "fuzz/differential");
      outcome = mb::gen::run_differential(gen_seeds[i], params[i],
                                          programs[i], seed_config);
    }
    if (outcome.defect.empty()) {
      ++clean;
    } else {
      ++defective;
    }
    if (outcome.has_chaos) ++chaos_arms;

    if (!outcome.ok()) {
      ++discrepancies;
      std::cout << "seed " << seed_index << " ("
                << mb::gen::pattern_name(params[i].pattern)
                << (outcome.defect.empty() ? ""
                                           : ", defect " + outcome.defect)
                << "): FAILED " << outcome.failed_oracle << "\n";
      for (const std::string& d : outcome.discrepancies)
        std::cout << "  - " << d << "\n";
      write_bundle_file(
          mb::gen::make_bundle(outcome, seed_config, base_seed),
          bundle_dir + "/mb-repro-seed" + std::to_string(seed_index) +
              ".json");
    }
    // --bundle-out records the seed unconditionally (known-good capture).
    if (opts.has("bundle-out"))
      write_bundle_file(mb::gen::make_bundle(outcome, seed_config, base_seed),
                        opts.get_str("bundle-out", ""));
  }

  std::cout << "programs:      " << n << " (" << clean << " clean, "
            << defective << " defective)\n"
            << "chaos arms:    " << chaos_arms << "\n"
            << "discrepancies: " << discrepancies << "\n";

  if (opts.has("json")) {
    mb::core::BenchReport report;
    report.suite = "fuzz";
    report.tool = "mbctl";
    report.seed = base_seed;
    using D = mb::core::Direction;
    add_record(report, "fuzz/programs", config.tree, "count", "programs",
               D::kMaximize, {static_cast<double>(n)});
    add_record(report, "fuzz/clean", config.tree, "count", "programs",
               D::kMaximize, {static_cast<double>(clean)});
    add_record(report, "fuzz/defective", config.tree, "count", "programs",
               D::kMaximize, {static_cast<double>(defective)});
    add_record(report, "fuzz/chaos_arms", config.tree, "count", "runs",
               D::kMaximize, {static_cast<double>(chaos_arms)});
    add_record(report, "fuzz/discrepancies", config.tree, "count", "seeds",
               D::kMinimize, {static_cast<double>(discrepancies)});
    write_report(report, opts.get_str("json", ""));
  }

  return discrepancies == 0 ? kExitOk : kExitFindings;
}

int cmd_replay(const std::string& path, Options& opts) {
  const mb::gen::ReproBundle bundle = load_bundle(path);
  if (bundle.tool_version != mb::support::version())
    std::cerr << "note: bundle was recorded by tool version "
              << bundle.tool_version << ", this is "
              << mb::support::version()
              << " — digest mismatches may be version drift\n";
  // --jobs is accepted for symmetry with fuzz (a replay is a single-seed
  // pipeline, byte-identical for any worker count); --sim-jobs genuinely
  // re-parameterizes the sharded arm, whose digests must not change.
  (void)opts.get_u64("jobs", 1);
  const int sim_jobs_override =
      opts.has("sim-jobs")
          ? static_cast<int>(opts.get_u64("sim-jobs", 0))
          : -1;

  mb::gen::ReplayOutcome rep;
  {
    mb::obs::ScopedSpan span(mb::obs::profiler(), "replay/differential");
    rep = mb::gen::replay_bundle(bundle, sim_jobs_override);
  }
  const mb::gen::SeedOutcome& got = rep.observed;

  std::cout << "=== replay: " << path << " ===\n"
            << "generator:     seed " << bundle.gen_seed << ", "
            << mb::gen::pattern_name(bundle.params.pattern) << ", "
            << bundle.params.ranks << " ranks, " << bundle.params.rounds
            << " rounds\n"
            << "platform:      " << bundle.platform.tree << ", "
            << bundle.platform.nodes << " nodes, sim-jobs "
            << (sim_jobs_override >= 0 ? sim_jobs_override
                                       : static_cast<int>(
                                             bundle.platform.sim_jobs))
            << "\n"
            << "recorded for:  oracle " << bundle.oracle
            << (bundle.note.empty() ? "" : " (" + bundle.note + ")") << "\n"
            << "verifier:      " << got.verifier_errors << " error(s), digest "
            << mb::support::hex64(got.verifier_digest) << "\n"
            << "des:           "
            << (got.des_completed ? "completed" : "did not complete")
            << ", digest " << mb::support::hex64(got.des_digest) << "\n";
  if (got.has_sharded)
    std::cout << "sharded:       digest "
              << mb::support::hex64(got.sharded_digest) << "\n";
  if (got.has_static)
    std::cout << "static:        digest "
              << mb::support::hex64(got.static_digest) << "\n";
  if (got.has_chaos)
    std::cout << "chaos:         digest "
              << mb::support::hex64(got.chaos_digest) << "\n";

  if (opts.has("bundle-out")) {
    // Re-emit the bundle with the observed digests but the original
    // capture metadata (platform, oracle, note), so replays from any
    // --jobs/--sim-jobs variant byte-compare equal to each other and —
    // when every digest matches — to the original bundle.
    mb::gen::ReproBundle observed = bundle;
    observed.expected.verifier_digest = got.verifier_digest;
    observed.expected.verifier_errors = got.verifier_errors;
    observed.expected.des_digest = got.des_digest;
    observed.expected.des_completed = got.des_completed;
    double makespan = got.makespan_s;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &makespan, sizeof bits);
    observed.expected.makespan_bits = bits;
    observed.expected.has_sharded = got.has_sharded;
    observed.expected.sharded_digest = got.sharded_digest;
    observed.expected.has_static = got.has_static;
    observed.expected.static_digest = got.static_digest;
    observed.expected.has_chaos = got.has_chaos;
    observed.expected.chaos_digest = got.chaos_digest;
    write_bundle_file(observed, opts.get_str("bundle-out", ""));
  }

  if (!rep.match()) {
    std::cout << "result:        MISMATCH (" << rep.mismatches.size()
              << ")\n";
    for (const std::string& m : rep.mismatches)
      std::cout << "  - " << m << "\n";
    return kExitFindings;
  }
  std::cout << "result:        OK — every recorded digest reproduced\n";
  return kExitOk;
}

int dispatch(const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  if (cmd == "platforms") return cmd_platforms();
  if (cmd == "version" || cmd == "--version" || cmd == "-V")
    return cmd_version();
  if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
  if (cmd == "bench-suite") {
    Options opts(args, 1);
    return cmd_bench_suite(opts);
  }
  if (cmd == "fig4") {
    Options opts(args, 1);
    return cmd_fig4(opts);
  }
  if (cmd == "trace-export") {
    Options opts(args, 1);
    return cmd_trace_export(opts);
  }
  if (cmd == "analyze") {
    Options opts(args, 1);
    return cmd_analyze(opts);
  }
  if (cmd == "obs-report") {
    if (args.size() < 2) usage("obs-report needs <profile.json>");
    Options opts(args, 2);
    return cmd_obs_report(args[1], opts);
  }
  if (cmd == "compare") {
    if (args.size() < 3) usage("compare needs <baseline.json> <candidate.json>");
    Options opts(args, 3);
    return cmd_compare(args[1], args[2], opts);
  }
  if (cmd == "lint") {
    if (args.size() < 2) usage("lint needs a platform or tree target");
    Options opts(args, 2);
    return cmd_lint(args[1], opts);
  }
  if (cmd == "verify-mpi") {
    if (args.size() < 2)
      usage("verify-mpi needs an app (fig4|bigdft|hpl|specfem|demo-deadlock)");
    Options opts(args, 2);
    return cmd_verify_mpi(args[1], opts);
  }
  if (cmd == "analyze-static") {
    if (args.size() < 2)
      usage("analyze-static needs an app (fig4|bigdft|hpl|specfem)");
    Options opts(args, 2);
    return cmd_analyze_static(args[1], opts);
  }
  if (cmd == "chaos") {
    if (args.size() < 2) usage("chaos needs an app (bigdft|hpl|specfem)");
    Options opts(args, 2);
    return cmd_chaos(args[1], opts);
  }
  if (cmd == "fuzz") {
    Options opts(args, 1);
    return cmd_fuzz(opts);
  }
  if (cmd == "replay") {
    if (args.size() < 2) usage("replay needs <bundle.json>");
    Options opts(args, 2);
    return cmd_replay(args[1], opts);
  }
  if (cmd == "advise") {
    if (args.size() < 2) usage("advise needs a target (bigdft|magicfilter)");
    Options opts(args, 2);
    return cmd_advise(args[1], opts);
  }
  if (args.size() < 2) usage(cmd + " needs a platform argument");
  const auto platform = resolve_platform(args[1]);
  Options opts(args, 2);
  if (cmd == "show") return cmd_show(platform);
  if (cmd == "topology") return cmd_topology(platform);
  if (cmd == "roofline") return cmd_roofline(platform, opts);
  if (cmd == "membench") return cmd_membench(platform, opts);
  if (cmd == "latency") return cmd_latency(platform, opts);
  if (cmd == "tune-magicfilter") return cmd_tune_magicfilter(platform, opts);
  usage("unknown command '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // The global --profile flag may appear anywhere; strip it before command
  // parsing so every command accepts it uniformly.
  std::string profile_path;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--profile") {
      if (std::next(it) == args.end()) usage("--profile needs a value");
      profile_path = *std::next(it);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (args.empty()) usage();

  try {
    if (!profile_path.empty()) mb::obs::profiler().set_enabled(true);

    int rc = 0;
    {
      // The root span wraps the whole command so obs-report's phase
      // coverage is measured against the command's true wall time.
      mb::obs::ScopedSpan span(mb::obs::profiler(), "mbctl/" + args[0]);
      rc = dispatch(args);
    }

    if (!profile_path.empty()) {
      std::string command;
      for (const auto& a : args) {
        if (!command.empty()) command += ' ';
        command += a;
      }
      const auto profile = mb::obs::capture_profile(
          mb::obs::profiler(), mb::obs::metrics(), "mbctl", command);
      std::ofstream out(profile_path);
      if (!out)
        throw mb::support::Error("cannot open " + profile_path +
                                 " for writing");
      out << mb::obs::to_json(profile);
      if (!out)
        throw mb::support::Error("write to " + profile_path + " failed");
      std::cerr << "wrote profile " << profile_path << '\n';
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "mbctl: " << e.what() << '\n';
    return 1;
  }
}
